//! Hermetic tracing and metrics for the EPOC pipeline and the `epocd`
//! compilation service.
//!
//! A dependency-free replacement for the `tracing` + `metrics` +
//! `tracing-chrome` stack, small enough to audit in one sitting:
//!
//! * **Spans** — [`span`] returns an RAII guard; dropping it records a
//!   complete interval (name, category, thread id, nesting depth, start,
//!   duration) into the global registry. Nesting is tracked per thread, so
//!   a GRAPE span opened inside the pulse stage shows up one level deeper.
//! * **Job scopes** — [`TelemetryScope::enter`] tags the current thread
//!   with a job (correlation) id; every span and counter delta recorded
//!   under it carries that id, and `epoc_rt::pool` propagates the id into
//!   its worker threads, so concurrent service jobs stay distinguishable
//!   in one shared registry.
//! * **Counters** — [`counter_add`] accumulates monotonically. Addition is
//!   commutative, so totals are *deterministic at any worker count* even
//!   though worker threads race on the registry lock — the property that
//!   lets the instrumented pipeline keep its byte-identical-report
//!   guarantee. Deltas recorded inside a job scope are additionally
//!   accumulated per `(job, counter)`.
//! * **Gauges** — [`gauge_set`]/[`gauge_add`] hold point-in-time levels
//!   (queue depth, inflight jobs, library resident bytes) that go up and
//!   down, unlike counters.
//! * **Histograms** — [`histogram_record`] buckets values on a log-2
//!   scale (bucket 0 holds zeros, bucket `i ≥ 1` holds `[2^(i-1), 2^i)`),
//!   which covers nanoseconds-to-seconds and single-digit-to-millions
//!   counts with 65 fixed buckets and no allocation per sample.
//!   [`Histogram::percentile`] extracts p50/p95/p99 summaries at bucket
//!   resolution.
//! * **Structured log** — [`log_open`] arms a JSONL event sink
//!   (`{"ts_ns":…,"level":"info","job":…,"event":…,…}` per line) that
//!   services write operational events to; see [`log_event`].
//!
//! Everything is **off by default**: until [`enable`] is called, every
//! entry point is a single relaxed atomic load and an immediate return —
//! no lock, no allocation, no `Instant::now()`. Instrumented hot loops
//! therefore cost nothing in production runs.
//!
//! The registry exports to Chrome trace-event JSON ([`chrome_trace`],
//! loadable in `chrome://tracing` or <https://ui.perfetto.dev>), to a
//! human-readable text dump ([`metrics_text`]), and to Prometheus
//! exposition text ([`prometheus_text`]). Timestamps are relative to the
//! [`enable`]/[`reset`] epoch; exact integer nanoseconds ride along in
//! each event's `args` so tooling can assert on nesting without
//! floating-point slop.

use crate::json::Json;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Global on/off switch. Relaxed is enough: toggling enablement is not a
/// synchronization point, it only gates future recording.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Span-event retention switch (see [`set_span_capture`]): when off,
/// spans still time out their RAII guards and bump depth bookkeeping,
/// but no [`SpanEvent`] is retained — services keep memory bounded.
static SPANS_ON: AtomicBool = AtomicBool::new(true);

/// Monotonic source of small per-thread ids (0 is reserved for "main",
/// i.e. whichever thread touches telemetry first).
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Small dense id for this thread (Chrome traces want integers, and
    /// `std::thread::ThreadId` has no stable integer accessor).
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Job (correlation) id attributed to spans and counter deltas
    /// recorded on this thread. 0 = unattributed.
    static JOB: Cell<u64> = const { Cell::new(0) };
}

fn thread_id() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != u64::MAX {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// The job id attributed to telemetry recorded on this thread (0 when no
/// [`TelemetryScope`] is active). `epoc_rt::pool` reads this on the
/// dispatching thread and replicates it into its workers, so fanned-out
/// work inherits the dispatcher's attribution.
#[inline]
pub fn current_job() -> u64 {
    JOB.with(Cell::get)
}

/// RAII job scope: while the guard lives, spans and counter deltas on
/// this thread (and on pool workers computing on its behalf) are
/// attributed to `job`. Scopes nest; dropping restores the previous id.
///
/// Job ids are caller-assigned correlation ids — `epocd` uses a per-job
/// monotone sequence number. Id 0 means "unattributed" and is what
/// threads outside any scope record.
#[must_use = "a scope attributes telemetry only while it is alive"]
pub struct TelemetryScope {
    prev: u64,
}

impl TelemetryScope {
    /// Enters a job scope on the current thread.
    pub fn enter(job: u64) -> Self {
        let prev = JOB.with(|j| j.replace(job));
        TelemetryScope { prev }
    }
}

impl Drop for TelemetryScope {
    fn drop(&mut self) {
        JOB.with(|j| j.set(self.prev));
    }
}

/// One completed span interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (e.g. `"grape"`).
    pub name: &'static str,
    /// Category (e.g. `"qoc"`, `"stage"`).
    pub cat: &'static str,
    /// Start, in nanoseconds since the registry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Dense thread id (0 = first thread to record).
    pub tid: u64,
    /// Nesting depth on its thread at the time the span opened.
    pub depth: u32,
    /// Job (correlation) id active when the span opened (0 when none).
    pub job: u64,
}

impl SpanEvent {
    /// End of the interval, in nanoseconds since the epoch. Saturating:
    /// a malformed clock (or a forged event near `u64::MAX`) clamps to
    /// `u64::MAX` instead of wrapping or panicking.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// A log-2 histogram: bucket 0 counts zeros, bucket `i ≥ 1` counts values
/// in `[2^(i-1), 2^i)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; 65],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample seen.
    pub min: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    fn record(&mut self, value: u64) {
        self.buckets[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The bucket index `value` falls into.
    pub fn bucket(value: u64) -> usize {
        match value {
            0 => 0,
            v => v.ilog2() as usize + 1,
        }
    }

    /// The largest value bucket `i` can hold: 0 for bucket 0, `2^i - 1`
    /// for `1 ≤ i < 64`, and `u64::MAX` for bucket 64.
    pub fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            64.. => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-quantile (`p` in `[0, 1]`) at log-2 bucket resolution: the
    /// upper edge of the first bucket whose cumulative count covers
    /// `ceil(p · count)` samples — i.e. a value at least `p` of the
    /// samples do not exceed. Returns 0 when the histogram is empty.
    /// Quantiles are a pure function of the bucket counts, so they are
    /// deterministic whenever the sample multiset is.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the edge to the observed extremes so p100 never
                // overshoots max and tiny quantiles never undershoot min.
                return Self::bucket_upper(i).min(self.max).max(self.min);
            }
        }
        self.max
    }
}

struct Registry {
    epoch: Instant,
    events: Vec<SpanEvent>,
    counters: BTreeMap<&'static str, u64>,
    /// Per-job slices of the counters: `(job, name) → delta sum` for
    /// deltas recorded inside a [`TelemetryScope`]. The global totals in
    /// `counters` always include these — this map only attributes them.
    job_counters: BTreeMap<(u64, &'static str), u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    fn new() -> Self {
        Self {
            epoch: Instant::now(),
            events: Vec::new(),
            counters: BTreeMap::new(),
            job_counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::new()))
}

/// Turns recording on. Idempotent; does not clear previous data (call
/// [`reset`] for a clean slate).
pub fn enable() {
    registry(); // arm the epoch before the first span can race it
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Spans already open still record on drop.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Gates span-*event* retention independently of the main switch.
/// Counters, gauges, histograms, and the structured log keep recording;
/// only the per-span event list stops growing. A long-running service
/// (epocd) turns this off so its memory footprint stays bounded while
/// live metrics stay on — span capture is a bounded-run (epocc
/// `--trace`) tool. Defaults to on.
pub fn set_span_capture(on: bool) {
    SPANS_ON.store(on, Ordering::Relaxed);
}

/// `true` when recording is on.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all recorded spans, counters, and histograms and re-arms the
/// timestamp epoch. Leaves the enabled flag untouched.
pub fn reset() {
    let mut r = registry().lock().unwrap();
    *r = Registry::new();
}

/// An RAII span guard returned by [`span`]. Dropping it records the
/// interval. When telemetry is disabled the guard is inert and
/// constructing + dropping it does no work at all.
#[must_use = "a span records its interval when dropped"]
pub struct Span {
    /// `None` when telemetry was disabled at open time. The tuple is
    /// (start, name, cat, depth, job) — the job id is latched at open
    /// time so a scope exiting mid-span cannot re-attribute it.
    open: Option<(Instant, &'static str, &'static str, u32, u64)>,
}

impl Span {
    /// An inert span (what [`span`] returns when disabled).
    pub const fn disabled() -> Self {
        Span { open: None }
    }

    /// `true` when this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.open.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((start, name, cat, depth, job)) = self.open.take() else {
            return;
        };
        let dur = start.elapsed();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if !SPANS_ON.load(Ordering::Relaxed) {
            return;
        }
        let tid = thread_id();
        let mut r = registry().lock().unwrap();
        let start_ns = start
            .checked_duration_since(r.epoch)
            .unwrap_or(Duration::ZERO)
            .as_nanos() as u64;
        r.events.push(SpanEvent {
            name,
            cat,
            start_ns,
            dur_ns: dur.as_nanos() as u64,
            tid,
            depth,
            job,
        });
    }
}

/// Opens a span named `name` in category `cat`. Returns an RAII guard
/// that records the interval when dropped. When telemetry is disabled
/// this is one atomic load and returns an inert guard.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if !is_enabled() {
        return Span::disabled();
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    Span {
        open: Some((Instant::now(), name, cat, depth, current_job())),
    }
}

/// Adds `delta` to the counter `name`. Counters merge by addition, so the
/// total is deterministic regardless of which thread recorded what. A
/// delta recorded inside a [`TelemetryScope`] is also attributed to the
/// active job (see [`job_counters_snapshot`]). When telemetry is disabled
/// this is one atomic load.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !is_enabled() || delta == 0 {
        return;
    }
    let job = current_job();
    let mut r = registry().lock().unwrap();
    *r.counters.entry(name).or_insert(0) += delta;
    if job != 0 {
        *r.job_counters.entry((job, name)).or_insert(0) += delta;
    }
}

/// Sets the gauge `name` to `value`. A gauge is a point-in-time level
/// (queue depth, inflight jobs, resident bytes) — last write wins.
/// When telemetry is disabled this is one atomic load.
#[inline]
pub fn gauge_set(name: &'static str, value: i64) {
    if !is_enabled() {
        return;
    }
    let mut r = registry().lock().unwrap();
    r.gauges.insert(name, value);
}

/// Adjusts the gauge `name` by a signed `delta` (saturating). Deltas are
/// commutative, so independent sources (e.g. the sharded pulse stores)
/// can maintain one shared level gauge without coordination. When
/// telemetry is disabled this is one atomic load.
#[inline]
pub fn gauge_add(name: &'static str, delta: i64) {
    if !is_enabled() || delta == 0 {
        return;
    }
    let mut r = registry().lock().unwrap();
    let g = r.gauges.entry(name).or_insert(0);
    *g = g.saturating_add(delta);
}

/// The current value of gauge `name` (0 when never touched).
pub fn gauge_value(name: &str) -> i64 {
    registry()
        .lock()
        .unwrap()
        .gauges
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// Snapshot of all gauges, sorted by name.
pub fn gauges_snapshot() -> Vec<(String, i64)> {
    registry()
        .lock()
        .unwrap()
        .gauges
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect()
}

/// Records `value` into the log-2 histogram `name`. When telemetry is
/// disabled this is one atomic load.
#[inline]
pub fn histogram_record(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    let mut r = registry().lock().unwrap();
    r.histograms.entry(name).or_default().record(value);
}

/// The current value of counter `name` (0 when never touched).
pub fn counter_value(name: &str) -> u64 {
    registry()
        .lock()
        .unwrap()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// Snapshot of all counters, sorted by name.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    registry()
        .lock()
        .unwrap()
        .counters
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect()
}

/// Snapshot of the per-job counter attribution, sorted by `(job, name)`.
/// Only deltas recorded inside a [`TelemetryScope`] appear here; the
/// global totals from [`counters_snapshot`] include them too.
pub fn job_counters_snapshot() -> Vec<(u64, String, u64)> {
    registry()
        .lock()
        .unwrap()
        .job_counters
        .iter()
        .map(|((job, name), v)| (*job, name.to_string(), *v))
        .collect()
}

/// Snapshot of all histograms, sorted by name.
pub fn histograms_snapshot() -> Vec<(String, Histogram)> {
    registry()
        .lock()
        .unwrap()
        .histograms
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

/// The histogram named `name`, when it has recorded anything.
pub fn histogram(name: &str) -> Option<Histogram> {
    registry().lock().unwrap().histograms.get(name).cloned()
}

/// Snapshot of all recorded span events, in completion order.
pub fn events_snapshot() -> Vec<SpanEvent> {
    registry().lock().unwrap().events.clone()
}

/// Severity of a structured log event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogLevel {
    /// Routine operational events (job admission, checkpoints).
    Info,
    /// Degraded-but-recovered events (recovery rungs, evictions).
    Warn,
    /// Failures (a job error, a failed checkpoint).
    Error,
}

impl LogLevel {
    /// The level's lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }
}

/// Fast-path switch for the structured log, mirroring [`ENABLED`]: when
/// no sink is armed, [`log_event`] is one relaxed load.
static LOG_ON: AtomicBool = AtomicBool::new(false);

fn log_sink() -> &'static Mutex<Option<std::io::BufWriter<std::fs::File>>> {
    static SINK: OnceLock<Mutex<Option<std::io::BufWriter<std::fs::File>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Arms the structured JSONL event log: every [`log_event`] appends one
/// compact JSON line to `path` (truncating any existing file). Logging is
/// independent of [`enable`] — a service can log operational events
/// without recording spans.
///
/// # Errors
///
/// Returns the I/O error when the file cannot be created.
pub fn log_open(path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    registry(); // arm the epoch so ts_ns starts near zero
    *log_sink().lock().unwrap_or_else(|e| e.into_inner()) =
        Some(std::io::BufWriter::new(file));
    LOG_ON.store(true, Ordering::Relaxed);
    Ok(())
}

/// Flushes and disarms the structured log sink. Idempotent.
pub fn log_close() {
    LOG_ON.store(false, Ordering::Relaxed);
    if let Some(mut w) = log_sink().lock().unwrap_or_else(|e| e.into_inner()).take() {
        let _ = w.flush();
    }
}

/// `true` when a structured log sink is armed.
#[inline]
pub fn is_logging() -> bool {
    LOG_ON.load(Ordering::Relaxed)
}

/// Appends one structured event line to the armed log sink (no-op when
/// none is). The line carries `ts_ns` (nanoseconds since the registry
/// epoch), the `level`, the active job id when inside a
/// [`TelemetryScope`], the `event` name, and every field of `fields`
/// (which must be a JSON object; other values are ignored). Each line is
/// flushed eagerly so a crashed service leaves a readable log.
pub fn log_event(level: LogLevel, event: &str, fields: Json) {
    if !is_logging() {
        return;
    }
    let ts_ns = {
        let r = registry().lock().unwrap();
        r.epoch.elapsed().as_nanos() as u64
    };
    let job = current_job();
    let mut line = Json::obj()
        .push("ts_ns", ts_ns)
        .push("level", level.as_str())
        .push("event", event);
    if job != 0 {
        line = line.push("job", job);
    }
    if let Json::Obj(entries) = fields {
        for (k, v) in entries {
            line = line.push(&k, v);
        }
    }
    let mut sink = log_sink().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(w) = sink.as_mut() {
        let _ = writeln!(w, "{}", line.to_string_compact());
        let _ = w.flush();
    }
}

/// Maps a dotted metric name onto the Prometheus charset:
/// `pulse_lib.lookup_ns.memory` → `epoc_pulse_lib_lookup_ns_memory`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("epoc_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// The quantiles [`prometheus_text`] exposes per histogram.
const PROM_QUANTILES: [(&str, f64); 3] = [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)];

/// Renders counters, gauges, and histogram summaries in the Prometheus
/// text exposition format. Counters recorded inside job scopes are
/// additionally exposed with a `job="N"` label; histograms become
/// summaries with p50/p95/p99 quantiles plus `_sum`/`_count`. The output
/// is deterministically sorted (families by name, series by job id), so
/// two dumps of the same registry state are byte-identical.
pub fn prometheus_text() -> String {
    use std::fmt::Write as _;
    let r = registry().lock().unwrap();
    let mut out = String::new();
    for (name, value) in &r.counters {
        let p = prom_name(name);
        let _ = writeln!(out, "# TYPE {p} counter");
        let _ = writeln!(out, "{p} {value}");
        // BTreeMap order is (job, name); filtering per name keeps series
        // sorted by job id.
        for ((job, jname), jvalue) in &r.job_counters {
            if jname == name {
                let _ = writeln!(out, "{p}{{job=\"{job}\"}} {jvalue}");
            }
        }
    }
    for (name, value) in &r.gauges {
        let p = prom_name(name);
        let _ = writeln!(out, "# TYPE {p} gauge");
        let _ = writeln!(out, "{p} {value}");
    }
    for (name, h) in &r.histograms {
        let p = prom_name(name);
        let _ = writeln!(out, "# TYPE {p} summary");
        for (label, q) in PROM_QUANTILES {
            let _ = writeln!(out, "{p}{{quantile=\"{label}\"}} {}", h.percentile(q));
        }
        let _ = writeln!(out, "{p}_sum {}", h.sum);
        let _ = writeln!(out, "{p}_count {}", h.count);
    }
    out
}

/// Renders everything recorded so far as a Chrome trace-event document:
/// `{"traceEvents": [...], "displayTimeUnit": "ns", ...}` with one `"X"`
/// (complete) event per span. `ts`/`dur` are microseconds as the format
/// requires; exact integer nanoseconds are duplicated into `args.ts_ns` /
/// `args.dur_ns` for tooling that wants lossless arithmetic. Counter and
/// histogram totals ride along under the `"epocCounters"` /
/// `"epocHistograms"` keys (ignored by trace viewers).
pub fn chrome_trace() -> Json {
    let r = registry().lock().unwrap();
    let mut events = Vec::with_capacity(r.events.len());
    for e in &r.events {
        events.push(
            Json::obj()
                .push("name", e.name)
                .push("cat", e.cat)
                .push("ph", "X")
                .push("ts", e.start_ns as f64 / 1e3)
                .push("dur", e.dur_ns as f64 / 1e3)
                .push("pid", 1u64)
                .push("tid", e.tid)
                .push(
                    "args",
                    Json::obj()
                        .push("depth", e.depth as u64)
                        .push("ts_ns", e.start_ns)
                        .push("dur_ns", e.dur_ns)
                        .push("job", e.job),
                ),
        );
    }
    let mut counters = Json::obj();
    for (name, value) in &r.counters {
        counters = counters.push(name, *value);
    }
    let mut gauges = Json::obj();
    for (name, value) in &r.gauges {
        gauges = gauges.push(name, *value);
    }
    let mut histograms = Json::obj();
    for (name, h) in &r.histograms {
        let nonzero: Vec<Json> = h
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::UInt(i as u64), Json::UInt(c)]))
            .collect();
        histograms = histograms.push(
            name,
            Json::obj()
                .push("count", h.count)
                .push("sum", h.sum)
                .push("min", if h.count == 0 { 0 } else { h.min })
                .push("max", h.max)
                .push("p50", h.percentile(0.50))
                .push("p95", h.percentile(0.95))
                .push("p99", h.percentile(0.99))
                .push("log2_buckets", Json::Arr(nonzero)),
        );
    }
    Json::obj()
        .push("traceEvents", Json::Arr(events))
        .push("displayTimeUnit", "ns")
        .push("epocCounters", counters)
        .push("epocGauges", gauges)
        .push("epocHistograms", histograms)
}

/// Renders counters, gauges, and histograms as an aligned,
/// human-readable text block (the `epocc --metrics` dump). Spans are
/// summarized per name; per-job counter slices are summarized per job.
/// Every section iterates a `BTreeMap`, so the dump is deterministically
/// sorted — two dumps of the same registry state are byte-identical.
pub fn metrics_text() -> String {
    use std::fmt::Write as _;
    let r = registry().lock().unwrap();
    let mut out = String::new();
    if !r.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &r.counters {
            let _ = writeln!(out, "  {name:<32} {value}");
        }
    }
    if !r.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &r.gauges {
            let _ = writeln!(out, "  {name:<32} {value}");
        }
    }
    if !r.histograms.is_empty() {
        out.push_str("histograms (log2 buckets):\n");
        for (name, h) in &r.histograms {
            let _ = writeln!(
                out,
                "  {name:<32} n={} mean={:.1} min={} max={} p50={} p95={} p99={}",
                h.count,
                h.mean(),
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.percentile(0.50),
                h.percentile(0.95),
                h.percentile(0.99),
            );
        }
    }
    if !r.job_counters.is_empty() {
        out.push_str("per-job counters:\n");
        for ((job, name), value) in &r.job_counters {
            let _ = writeln!(out, "  job={job} {name:<26} {value}");
        }
    }
    // Per-name span roll-up: count and total time.
    let mut rollup: BTreeMap<(&str, &str), (u64, u64)> = BTreeMap::new();
    for e in &r.events {
        let slot = rollup.entry((e.cat, e.name)).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += e.dur_ns;
    }
    if !rollup.is_empty() {
        out.push_str("spans:\n");
        for ((cat, name), (count, total_ns)) in &rollup {
            let _ = writeln!(
                out,
                "  {:<32} n={count} total={:.3}ms",
                format!("{cat}/{name}"),
                *total_ns as f64 / 1e6
            );
        }
    }
    if out.is_empty() {
        out.push_str("telemetry: nothing recorded\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry state is global; tests in this binary serialize on this.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _guard = lock();
        disable();
        reset();
        {
            let s = span("test", "noop");
            assert!(!s.is_recording());
            counter_add("test.counter", 7);
            histogram_record("test.hist", 42);
        }
        assert!(events_snapshot().is_empty());
        assert_eq!(counter_value("test.counter"), 0);
        assert!(counters_snapshot().is_empty());
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let _guard = lock();
        reset();
        enable();
        {
            let _outer = span("test", "outer");
            {
                let _inner = span("test", "inner");
            }
        }
        disable();
        let events = events_snapshot();
        assert_eq!(events.len(), 2);
        // Inner completes first.
        let inner = &events[0];
        let outer = &events[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.tid, outer.tid);
        // Containment in exact integer nanoseconds.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
        reset();
    }

    #[test]
    fn cross_thread_counter_merge_is_deterministic() {
        let _guard = lock();
        reset();
        enable();
        let run = || {
            reset();
            std::thread::scope(|scope| {
                for t in 0..8u64 {
                    scope.spawn(move || {
                        for i in 0..100u64 {
                            counter_add("test.merge", t * 100 + i);
                        }
                    });
                }
            });
            counter_value("test.merge")
        };
        let a = run();
        let b = run();
        // Σ_{t<8} Σ_{i<100} (100t + i) = 100·100·(0+..+7) + 8·(0+..+99)
        let expected: u64 = (0..8u64).map(|t| (0..100).map(|i| t * 100 + i).sum::<u64>()).sum();
        assert_eq!(a, expected);
        assert_eq!(a, b, "counter totals must not depend on interleaving");
        disable();
        reset();
    }

    #[test]
    fn spans_from_worker_threads_get_distinct_tids() {
        let _guard = lock();
        reset();
        enable();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let _s = span("test", "worker");
                });
            }
        });
        disable();
        let events = events_snapshot();
        assert_eq!(events.len(), 3);
        let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each worker thread gets its own tid");
        reset();
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(1023), 10);
        assert_eq!(Histogram::bucket(1024), 11);
        assert_eq!(Histogram::bucket(u64::MAX), 64);
        let mut h = Histogram::default();
        for v in [0, 1, 1, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 105);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[7], 1);
        assert!((h.mean() - 21.0).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_round_trips_through_parser() {
        let _guard = lock();
        reset();
        enable();
        {
            let _s = span("stage", "zx");
        }
        counter_add("zx.fusions", 3);
        histogram_record("partition.block_qubits", 2);
        disable();
        let doc = chrome_trace();
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).expect("trace is valid JSON");
        let events = match parsed.get("traceEvents") {
            Some(Json::Arr(items)) => items,
            other => panic!("traceEvents missing or not an array: {other:?}"),
        };
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.get("name").and_then(Json::as_str), Some("zx"));
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        assert!(e.get("dur").and_then(Json::as_f64).is_some());
        let args = e.get("args").expect("args present");
        assert!(args.get("ts_ns").and_then(Json::as_f64).is_some());
        assert_eq!(
            parsed
                .get("epocCounters")
                .and_then(|c| c.get("zx.fusions"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        assert!(parsed
            .get("epocHistograms")
            .and_then(|h| h.get("partition.block_qubits"))
            .is_some());
        reset();
    }

    #[test]
    fn metrics_text_lists_counters_and_spans() {
        let _guard = lock();
        reset();
        enable();
        counter_add("pulse_lib.hits", 4);
        {
            let _s = span("stage", "pulse");
        }
        histogram_record("grape.iters_per_run", 37);
        disable();
        let text = metrics_text();
        assert!(text.contains("pulse_lib.hits"), "{text}");
        assert!(text.contains("stage/pulse"), "{text}");
        assert!(text.contains("grape.iters_per_run"), "{text}");
        reset();
        assert!(metrics_text().contains("nothing recorded"));
    }

    #[test]
    fn histogram_bucket_edges_cannot_panic() {
        // The satellite contract: malformed clocks (0, 1, u64::MAX) land
        // in valid buckets instead of panicking the sink.
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(u64::MAX), 64);
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count, 3);
        assert_eq!(h.max, u64::MAX);
        // The sum saturates rather than wraps.
        h.record(u64::MAX);
        assert_eq!(h.sum, u64::MAX);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(10), 1023);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn span_end_ns_saturates() {
        let e = SpanEvent {
            name: "forged",
            cat: "test",
            start_ns: u64::MAX - 1,
            dur_ns: 100,
            tid: 0,
            depth: 0,
            job: 0,
        };
        assert_eq!(e.end_ns(), u64::MAX);
    }

    #[test]
    fn percentiles_track_bucket_edges() {
        let mut h = Histogram::default();
        assert_eq!(h.percentile(0.5), 0, "empty histogram has no quantiles");
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        // 6 samples: p50 covers rank 3 (value 3, bucket 2, upper edge 3).
        assert_eq!(h.percentile(0.50), 3);
        // p99 covers rank 6 → bucket of 1000 (upper edge 1023), clamped
        // to the observed max.
        assert_eq!(h.percentile(0.99), 1000);
        assert_eq!(h.percentile(1.0), 1000);
        // p0 clamps to at least one sample and never undershoots min.
        assert!(h.percentile(0.0) >= 1);
        // A single-sample histogram answers that sample for every p.
        let mut one = Histogram::default();
        one.record(37);
        assert_eq!(one.percentile(0.5), 37);
        assert_eq!(one.percentile(0.99), 37);
    }

    #[test]
    fn scopes_attribute_counters_and_spans() {
        let _guard = lock();
        reset();
        enable();
        counter_add("test.jobs.work", 1); // outside any scope
        {
            let _s1 = TelemetryScope::enter(7);
            assert_eq!(current_job(), 7);
            counter_add("test.jobs.work", 10);
            {
                let _nested = TelemetryScope::enter(8);
                assert_eq!(current_job(), 8);
                counter_add("test.jobs.work", 100);
                let _sp = span("test", "inner");
            }
            assert_eq!(current_job(), 7, "nested scope did not restore");
        }
        assert_eq!(current_job(), 0, "outer scope did not restore");
        disable();
        assert_eq!(counter_value("test.jobs.work"), 111);
        let jobs = job_counters_snapshot();
        assert_eq!(
            jobs,
            vec![
                (7, "test.jobs.work".to_string(), 10),
                (8, "test.jobs.work".to_string(), 100),
            ]
        );
        let events = events_snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].job, 8, "span not attributed to its scope");
        reset();
    }

    #[test]
    fn span_capture_toggle_bounds_event_growth() {
        let _guard = lock();
        reset();
        enable();
        set_span_capture(false);
        {
            let _s = span("test", "invisible");
            counter_add("test.spanoff.counter", 1);
        }
        set_span_capture(true);
        {
            let _s = span("test", "visible");
        }
        disable();
        let events = events_snapshot();
        assert_eq!(events.len(), 1, "span recorded while capture was off");
        assert_eq!(events[0].name, "visible");
        assert_eq!(
            counter_value("test.spanoff.counter"),
            1,
            "counters must keep recording with span capture off"
        );
        reset();
    }

    #[test]
    fn gauges_set_add_and_snapshot_sorted() {
        let _guard = lock();
        reset();
        enable();
        gauge_set("test.gauge.b", 5);
        gauge_set("test.gauge.a", -3);
        gauge_add("test.gauge.b", -2);
        gauge_add("test.gauge.c", 4);
        disable();
        assert_eq!(gauge_value("test.gauge.a"), -3);
        assert_eq!(gauge_value("test.gauge.b"), 3);
        assert_eq!(gauge_value("test.gauge.c"), 4);
        assert_eq!(gauge_value("test.gauge.untouched"), 0);
        let snap = gauges_snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["test.gauge.a", "test.gauge.b", "test.gauge.c"]);
        reset();
    }

    #[test]
    fn disabled_mode_ignores_gauges_and_job_counters() {
        let _guard = lock();
        disable();
        reset();
        gauge_set("test.off.gauge", 9);
        let _scope = TelemetryScope::enter(3);
        counter_add("test.off.counter", 2);
        assert_eq!(gauge_value("test.off.gauge"), 0);
        assert!(job_counters_snapshot().is_empty());
    }

    #[test]
    fn metrics_dumps_are_deterministically_sorted() {
        let _guard = lock();
        // Two registries populated in opposite orders must render
        // byte-identical text — the regression contract for diffing
        // metrics dumps across runs.
        let populate = |forward: bool| -> (String, String) {
            reset();
            enable();
            let names = ["test.sort.a", "test.sort.b", "test.sort.c"];
            let order: Vec<usize> = if forward { vec![0, 1, 2] } else { vec![2, 1, 0] };
            for &i in &order {
                counter_add(names[i], (i + 1) as u64);
                gauge_set(names[i], i as i64);
                histogram_record(names[i], 1 << i);
                let _s = TelemetryScope::enter((i + 1) as u64);
                counter_add(names[i], 5);
            }
            disable();
            let out = (metrics_text(), prometheus_text());
            reset();
            out
        };
        let (text_f, prom_f) = populate(true);
        let (text_r, prom_r) = populate(false);
        assert_eq!(text_f, text_r, "metrics_text depends on insertion order");
        assert_eq!(prom_f, prom_r, "prometheus_text depends on insertion order");
    }

    #[test]
    fn prometheus_text_exposes_all_families() {
        let _guard = lock();
        reset();
        enable();
        counter_add("test.prom.hits", 3);
        {
            let _s = TelemetryScope::enter(2);
            counter_add("test.prom.hits", 4);
        }
        gauge_set("test.prom.depth", 6);
        for v in [10u64, 20, 4000] {
            histogram_record("test.prom.lat_ns", v);
        }
        disable();
        let text = prometheus_text();
        assert!(text.contains("# TYPE epoc_test_prom_hits counter"), "{text}");
        assert!(text.contains("epoc_test_prom_hits 7"), "{text}");
        assert!(text.contains("epoc_test_prom_hits{job=\"2\"} 4"), "{text}");
        assert!(text.contains("# TYPE epoc_test_prom_depth gauge"), "{text}");
        assert!(text.contains("epoc_test_prom_depth 6"), "{text}");
        assert!(text.contains("# TYPE epoc_test_prom_lat_ns summary"), "{text}");
        assert!(text.contains("epoc_test_prom_lat_ns{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("epoc_test_prom_lat_ns{quantile=\"0.99\"}"), "{text}");
        assert!(text.contains("epoc_test_prom_lat_ns_sum 4030"), "{text}");
        assert!(text.contains("epoc_test_prom_lat_ns_count 3"), "{text}");
        reset();
    }

    #[test]
    fn log_events_are_valid_jsonl_with_levels_and_jobs() {
        let _guard = lock();
        reset();
        let path = std::env::temp_dir()
            .join(format!("epoc-telemetry-log-{}.jsonl", std::process::id()));
        log_open(&path).unwrap();
        assert!(is_logging());
        log_event(LogLevel::Info, "job.admitted", Json::obj().push("source", "bench"));
        {
            let _s = TelemetryScope::enter(4);
            log_event(LogLevel::Warn, "recovery", Json::obj().push("rung", "r1"));
        }
        log_event(LogLevel::Error, "checkpoint.failed", Json::obj());
        log_close();
        assert!(!is_logging());
        log_event(LogLevel::Info, "after.close", Json::obj()); // must be a no-op
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        for line in &lines {
            let j = Json::parse(line).expect("log line is valid JSON");
            assert!(j.get("ts_ns").and_then(Json::as_f64).is_some());
            let level = j.get("level").and_then(Json::as_str).unwrap();
            assert!(matches!(level, "info" | "warn" | "error"), "{level}");
            assert!(j.get("event").and_then(Json::as_str).is_some());
        }
        let warn = Json::parse(lines[1]).unwrap();
        assert_eq!(warn.get("job").and_then(Json::as_f64), Some(4.0));
        assert_eq!(warn.get("rung").and_then(Json::as_str), Some("r1"));
        assert!(Json::parse(lines[0]).unwrap().get("job").is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_rearms_epoch() {
        let _guard = lock();
        reset();
        enable();
        {
            let _s = span("test", "warm");
        }
        std::thread::sleep(Duration::from_millis(2));
        reset();
        {
            let _s = span("test", "fresh");
        }
        disable();
        let events = events_snapshot();
        assert_eq!(events.len(), 1);
        // A fresh epoch means the new span starts near zero, not 2ms in.
        assert!(
            events[0].start_ns < 1_500_000,
            "epoch not re-armed: start {}ns",
            events[0].start_ns
        );
        reset();
    }
}

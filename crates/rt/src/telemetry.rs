//! Hermetic tracing and metrics for the EPOC pipeline.
//!
//! A dependency-free replacement for the `tracing` + `metrics` +
//! `tracing-chrome` stack, small enough to audit in one sitting:
//!
//! * **Spans** — [`span`] returns an RAII guard; dropping it records a
//!   complete interval (name, category, thread id, nesting depth, start,
//!   duration) into the global registry. Nesting is tracked per thread, so
//!   a GRAPE span opened inside the pulse stage shows up one level deeper.
//! * **Counters** — [`counter_add`] accumulates monotonically. Addition is
//!   commutative, so totals are *deterministic at any worker count* even
//!   though worker threads race on the registry lock — the property that
//!   lets the instrumented pipeline keep its byte-identical-report
//!   guarantee.
//! * **Histograms** — [`histogram_record`] buckets values on a log-2
//!   scale (bucket 0 holds zeros, bucket `i ≥ 1` holds `[2^(i-1), 2^i)`),
//!   which covers nanoseconds-to-seconds and single-digit-to-millions
//!   counts with 65 fixed buckets and no allocation per sample.
//!
//! Everything is **off by default**: until [`enable`] is called, every
//! entry point is a single relaxed atomic load and an immediate return —
//! no lock, no allocation, no `Instant::now()`. Instrumented hot loops
//! therefore cost nothing in production runs.
//!
//! The registry exports to Chrome trace-event JSON ([`chrome_trace`],
//! loadable in `chrome://tracing` or <https://ui.perfetto.dev>) and to a
//! human-readable text dump ([`metrics_text`]). Timestamps are relative
//! to the [`enable`]/[`reset`] epoch; exact integer nanoseconds ride
//! along in each event's `args` so tooling can assert on nesting without
//! floating-point slop.

use crate::json::Json;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Global on/off switch. Relaxed is enough: toggling enablement is not a
/// synchronization point, it only gates future recording.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic source of small per-thread ids (0 is reserved for "main",
/// i.e. whichever thread touches telemetry first).
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Small dense id for this thread (Chrome traces want integers, and
    /// `std::thread::ThreadId` has no stable integer accessor).
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn thread_id() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != u64::MAX {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// One completed span interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (e.g. `"grape"`).
    pub name: &'static str,
    /// Category (e.g. `"qoc"`, `"stage"`).
    pub cat: &'static str,
    /// Start, in nanoseconds since the registry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Dense thread id (0 = first thread to record).
    pub tid: u64,
    /// Nesting depth on its thread at the time the span opened.
    pub depth: u32,
}

impl SpanEvent {
    /// End of the interval, in nanoseconds since the epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// A log-2 histogram: bucket 0 counts zeros, bucket `i ≥ 1` counts values
/// in `[2^(i-1), 2^i)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; 65],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample seen.
    pub min: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    fn record(&mut self, value: u64) {
        self.buckets[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The bucket index `value` falls into.
    pub fn bucket(value: u64) -> usize {
        match value {
            0 => 0,
            v => v.ilog2() as usize + 1,
        }
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

struct Registry {
    epoch: Instant,
    events: Vec<SpanEvent>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    fn new() -> Self {
        Self {
            epoch: Instant::now(),
            events: Vec::new(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::new()))
}

/// Turns recording on. Idempotent; does not clear previous data (call
/// [`reset`] for a clean slate).
pub fn enable() {
    registry(); // arm the epoch before the first span can race it
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Spans already open still record on drop.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// `true` when recording is on.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all recorded spans, counters, and histograms and re-arms the
/// timestamp epoch. Leaves the enabled flag untouched.
pub fn reset() {
    let mut r = registry().lock().unwrap();
    *r = Registry::new();
}

/// An RAII span guard returned by [`span`]. Dropping it records the
/// interval. When telemetry is disabled the guard is inert and
/// constructing + dropping it does no work at all.
#[must_use = "a span records its interval when dropped"]
pub struct Span {
    /// `None` when telemetry was disabled at open time.
    open: Option<(Instant, &'static str, &'static str, u32)>,
}

impl Span {
    /// An inert span (what [`span`] returns when disabled).
    pub const fn disabled() -> Self {
        Span { open: None }
    }

    /// `true` when this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.open.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((start, name, cat, depth)) = self.open.take() else {
            return;
        };
        let dur = start.elapsed();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let tid = thread_id();
        let mut r = registry().lock().unwrap();
        let start_ns = start
            .checked_duration_since(r.epoch)
            .unwrap_or(Duration::ZERO)
            .as_nanos() as u64;
        r.events.push(SpanEvent {
            name,
            cat,
            start_ns,
            dur_ns: dur.as_nanos() as u64,
            tid,
            depth,
        });
    }
}

/// Opens a span named `name` in category `cat`. Returns an RAII guard
/// that records the interval when dropped. When telemetry is disabled
/// this is one atomic load and returns an inert guard.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if !is_enabled() {
        return Span::disabled();
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    Span {
        open: Some((Instant::now(), name, cat, depth)),
    }
}

/// Adds `delta` to the counter `name`. Counters merge by addition, so the
/// total is deterministic regardless of which thread recorded what.
/// When telemetry is disabled this is one atomic load.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !is_enabled() || delta == 0 {
        return;
    }
    let mut r = registry().lock().unwrap();
    *r.counters.entry(name).or_insert(0) += delta;
}

/// Records `value` into the log-2 histogram `name`. When telemetry is
/// disabled this is one atomic load.
#[inline]
pub fn histogram_record(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    let mut r = registry().lock().unwrap();
    r.histograms.entry(name).or_default().record(value);
}

/// The current value of counter `name` (0 when never touched).
pub fn counter_value(name: &str) -> u64 {
    registry()
        .lock()
        .unwrap()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// Snapshot of all counters, sorted by name.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    registry()
        .lock()
        .unwrap()
        .counters
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect()
}

/// Snapshot of all recorded span events, in completion order.
pub fn events_snapshot() -> Vec<SpanEvent> {
    registry().lock().unwrap().events.clone()
}

/// Renders everything recorded so far as a Chrome trace-event document:
/// `{"traceEvents": [...], "displayTimeUnit": "ns", ...}` with one `"X"`
/// (complete) event per span. `ts`/`dur` are microseconds as the format
/// requires; exact integer nanoseconds are duplicated into `args.ts_ns` /
/// `args.dur_ns` for tooling that wants lossless arithmetic. Counter and
/// histogram totals ride along under the `"epocCounters"` /
/// `"epocHistograms"` keys (ignored by trace viewers).
pub fn chrome_trace() -> Json {
    let r = registry().lock().unwrap();
    let mut events = Vec::with_capacity(r.events.len());
    for e in &r.events {
        events.push(
            Json::obj()
                .push("name", e.name)
                .push("cat", e.cat)
                .push("ph", "X")
                .push("ts", e.start_ns as f64 / 1e3)
                .push("dur", e.dur_ns as f64 / 1e3)
                .push("pid", 1u64)
                .push("tid", e.tid)
                .push(
                    "args",
                    Json::obj()
                        .push("depth", e.depth as u64)
                        .push("ts_ns", e.start_ns)
                        .push("dur_ns", e.dur_ns),
                ),
        );
    }
    let mut counters = Json::obj();
    for (name, value) in &r.counters {
        counters = counters.push(name, *value);
    }
    let mut histograms = Json::obj();
    for (name, h) in &r.histograms {
        let nonzero: Vec<Json> = h
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::UInt(i as u64), Json::UInt(c)]))
            .collect();
        histograms = histograms.push(
            name,
            Json::obj()
                .push("count", h.count)
                .push("sum", h.sum)
                .push("min", if h.count == 0 { 0 } else { h.min })
                .push("max", h.max)
                .push("log2_buckets", Json::Arr(nonzero)),
        );
    }
    Json::obj()
        .push("traceEvents", Json::Arr(events))
        .push("displayTimeUnit", "ns")
        .push("epocCounters", counters)
        .push("epocHistograms", histograms)
}

/// Renders counters and histograms as an aligned, human-readable text
/// block (the `epocc --metrics` dump). Spans are summarized per name.
pub fn metrics_text() -> String {
    use std::fmt::Write as _;
    let r = registry().lock().unwrap();
    let mut out = String::new();
    if !r.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &r.counters {
            let _ = writeln!(out, "  {name:<32} {value}");
        }
    }
    if !r.histograms.is_empty() {
        out.push_str("histograms (log2 buckets):\n");
        for (name, h) in &r.histograms {
            let _ = writeln!(
                out,
                "  {name:<32} n={} mean={:.1} min={} max={}",
                h.count,
                h.mean(),
                if h.count == 0 { 0 } else { h.min },
                h.max
            );
        }
    }
    // Per-name span roll-up: count and total time.
    let mut rollup: BTreeMap<(&str, &str), (u64, u64)> = BTreeMap::new();
    for e in &r.events {
        let slot = rollup.entry((e.cat, e.name)).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += e.dur_ns;
    }
    if !rollup.is_empty() {
        out.push_str("spans:\n");
        for ((cat, name), (count, total_ns)) in &rollup {
            let _ = writeln!(
                out,
                "  {:<32} n={count} total={:.3}ms",
                format!("{cat}/{name}"),
                *total_ns as f64 / 1e6
            );
        }
    }
    if out.is_empty() {
        out.push_str("telemetry: nothing recorded\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry state is global; tests in this binary serialize on this.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _guard = lock();
        disable();
        reset();
        {
            let s = span("test", "noop");
            assert!(!s.is_recording());
            counter_add("test.counter", 7);
            histogram_record("test.hist", 42);
        }
        assert!(events_snapshot().is_empty());
        assert_eq!(counter_value("test.counter"), 0);
        assert!(counters_snapshot().is_empty());
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let _guard = lock();
        reset();
        enable();
        {
            let _outer = span("test", "outer");
            {
                let _inner = span("test", "inner");
            }
        }
        disable();
        let events = events_snapshot();
        assert_eq!(events.len(), 2);
        // Inner completes first.
        let inner = &events[0];
        let outer = &events[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.tid, outer.tid);
        // Containment in exact integer nanoseconds.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
        reset();
    }

    #[test]
    fn cross_thread_counter_merge_is_deterministic() {
        let _guard = lock();
        reset();
        enable();
        let run = || {
            reset();
            std::thread::scope(|scope| {
                for t in 0..8u64 {
                    scope.spawn(move || {
                        for i in 0..100u64 {
                            counter_add("test.merge", t * 100 + i);
                        }
                    });
                }
            });
            counter_value("test.merge")
        };
        let a = run();
        let b = run();
        // Σ_{t<8} Σ_{i<100} (100t + i) = 100·100·(0+..+7) + 8·(0+..+99)
        let expected: u64 = (0..8u64).map(|t| (0..100).map(|i| t * 100 + i).sum::<u64>()).sum();
        assert_eq!(a, expected);
        assert_eq!(a, b, "counter totals must not depend on interleaving");
        disable();
        reset();
    }

    #[test]
    fn spans_from_worker_threads_get_distinct_tids() {
        let _guard = lock();
        reset();
        enable();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let _s = span("test", "worker");
                });
            }
        });
        disable();
        let events = events_snapshot();
        assert_eq!(events.len(), 3);
        let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each worker thread gets its own tid");
        reset();
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(1023), 10);
        assert_eq!(Histogram::bucket(1024), 11);
        assert_eq!(Histogram::bucket(u64::MAX), 64);
        let mut h = Histogram::default();
        for v in [0, 1, 1, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 105);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[7], 1);
        assert!((h.mean() - 21.0).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_round_trips_through_parser() {
        let _guard = lock();
        reset();
        enable();
        {
            let _s = span("stage", "zx");
        }
        counter_add("zx.fusions", 3);
        histogram_record("partition.block_qubits", 2);
        disable();
        let doc = chrome_trace();
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).expect("trace is valid JSON");
        let events = match parsed.get("traceEvents") {
            Some(Json::Arr(items)) => items,
            other => panic!("traceEvents missing or not an array: {other:?}"),
        };
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.get("name").and_then(Json::as_str), Some("zx"));
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        assert!(e.get("dur").and_then(Json::as_f64).is_some());
        let args = e.get("args").expect("args present");
        assert!(args.get("ts_ns").and_then(Json::as_f64).is_some());
        assert_eq!(
            parsed
                .get("epocCounters")
                .and_then(|c| c.get("zx.fusions"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        assert!(parsed
            .get("epocHistograms")
            .and_then(|h| h.get("partition.block_qubits"))
            .is_some());
        reset();
    }

    #[test]
    fn metrics_text_lists_counters_and_spans() {
        let _guard = lock();
        reset();
        enable();
        counter_add("pulse_lib.hits", 4);
        {
            let _s = span("stage", "pulse");
        }
        histogram_record("grape.iters_per_run", 37);
        disable();
        let text = metrics_text();
        assert!(text.contains("pulse_lib.hits"), "{text}");
        assert!(text.contains("stage/pulse"), "{text}");
        assert!(text.contains("grape.iters_per_run"), "{text}");
        reset();
        assert!(metrics_text().contains("nothing recorded"));
    }

    #[test]
    fn reset_rearms_epoch() {
        let _guard = lock();
        reset();
        enable();
        {
            let _s = span("test", "warm");
        }
        std::thread::sleep(Duration::from_millis(2));
        reset();
        {
            let _s = span("test", "fresh");
        }
        disable();
        let events = events_snapshot();
        assert_eq!(events.len(), 1);
        // A fresh epoch means the new span starts near zero, not 2ms in.
        assert!(
            events[0].start_ns < 1_500_000,
            "epoch not re-armed: start {}ns",
            events[0].start_ns
        );
        reset();
    }
}

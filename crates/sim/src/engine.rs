//! Dense propagation over a lowered timeline.
//!
//! Two modes share the breakpoint walk:
//!
//! * **Propagator** ([`propagate`]) — accumulates the full `2^n × 2^n`
//!   unitary of the noiseless schedule. Each breakpoint interval has a
//!   constant Hamiltonian (waveform slots are piecewise constant), so the
//!   exact step is `exp(-i·Δt·H)` via `expm_hermitian_propagator`; idle
//!   intervals (no active drive) are skipped outright because the replay
//!   model treats undriven lines as frozen in the rotating frame — exactly
//!   the assumption GRAPE optimized each block under.
//! * **Trajectory** ([`run_trajectory`]) — evolves `|0…0⟩` as a state
//!   vector under one noise sample: quasi-static per-qubit detuning and
//!   drive-amplitude scale drawn once per trajectory, plus a crude
//!   T1/T2 jump unraveling (one uniform draw per interval and qubit;
//!   amplitude damping with probability `Δt/T1`, else a phase flip with
//!   probability `Δt·(1/T2 − 1/(2T1))`). This is a pessimistic
//!   Monte-Carlo estimate, not a Lindblad integrator — its job is to give
//!   a deterministic, seedable end-to-end sanity band, not exact ensemble
//!   averages.
//!
//! All scratch matrices and vectors live in [`SimWorkspace`] and are
//! reused across steps, mirroring `GrapeWorkspace`: the only per-step
//! allocations are inside the eigendecomposition itself.

use crate::error::SimError;
use crate::timeline::{Timeline, TIME_TOL};
use crate::NoiseModel;
use epoc_linalg::{c64, expm_hermitian_propagator, Complex64, Matrix};
use epoc_rt::rng::{Rng, Xoshiro256ss};

/// Reusable scratch space for the stepping loops.
#[derive(Debug)]
pub struct SimWorkspace {
    /// Interval Hamiltonian.
    h: Matrix,
    /// Accumulated propagator.
    u: Matrix,
    /// Matrix-product scratch.
    scratch: Matrix,
    /// Trajectory state vector.
    psi: Vec<Complex64>,
    /// State-vector product scratch.
    psi_tmp: Vec<Complex64>,
}

impl SimWorkspace {
    /// Allocates scratch for a `dim`-dimensional register.
    pub fn new(dim: usize) -> Self {
        Self {
            h: Matrix::zeros(dim, dim),
            u: Matrix::identity(dim),
            scratch: Matrix::zeros(dim, dim),
            psi: vec![c64(0.0, 0.0); dim],
            psi_tmp: Vec::with_capacity(dim),
        }
    }
}

/// One noise sample, drawn per trajectory.
struct NoiseSample {
    /// Per-qubit quasi-static detuning (rad/ns), empty when disabled.
    detuning: Vec<f64>,
    /// Per-qubit drive amplitude scale, empty when disabled.
    amp_scale: Vec<f64>,
    /// Amplitude-damping rate `1/T1` (1/ns), 0 when disabled.
    r1: f64,
    /// Pure-dephasing rate `1/T2 − 1/(2·T1)` (1/ns), 0 when disabled.
    rphi: f64,
}

impl NoiseSample {
    /// Draws one sample. The draw *count* depends only on the noise
    /// config and register width, never on drawn values, so streams stay
    /// aligned across trajectories.
    fn draw(noise: &NoiseModel, n_qubits: usize, rng: &mut impl Rng) -> Self {
        let mut detuning = Vec::new();
        let mut amp_scale = Vec::new();
        for _ in 0..n_qubits {
            if noise.detuning_sigma > 0.0 {
                detuning.push(rng.gen_gaussian() * noise.detuning_sigma);
            }
            if noise.amplitude_sigma > 0.0 {
                amp_scale.push(1.0 + rng.gen_gaussian() * noise.amplitude_sigma);
            }
        }
        let r1 = if noise.t1 > 0.0 { 1.0 / noise.t1 } else { 0.0 };
        let rphi = if noise.t2 > 0.0 {
            (1.0 / noise.t2 - r1 / 2.0).max(0.0)
        } else {
            0.0
        };
        Self {
            detuning,
            amp_scale,
            r1,
            rphi,
        }
    }

    fn has_jumps(&self) -> bool {
        self.r1 > 0.0 || self.rphi > 0.0
    }
}

/// Writes the interval Hamiltonian at midpoint `mid` into `ws.h`.
/// Returns `false` when no drive is active (and no detuning is present),
/// i.e. the interval evolves as the identity.
fn assemble_hamiltonian(
    timeline: &Timeline,
    mid: f64,
    sample: Option<&NoiseSample>,
    ws: &mut SimWorkspace,
) -> bool {
    ws.h.as_mut_slice().fill(c64(0.0, 0.0));
    let mut active = false;
    for d in &timeline.drives {
        if !Timeline::drive_active(d, mid) {
            continue;
        }
        active = true;
        add_scaled(&mut ws.h, &d.drift, 1.0);
        let t_off = mid - d.start;
        for (ch, h_ch) in d.channels.iter().enumerate() {
            let mut amp = d.waveform.amplitude(ch, t_off);
            if let Some(s) = sample {
                if !s.amp_scale.is_empty() {
                    amp *= s.amp_scale[d.qubits[ch / 2]];
                }
            }
            if amp != 0.0 {
                add_scaled(&mut ws.h, h_ch, amp);
            }
        }
    }
    if let Some(s) = sample {
        if !s.detuning.is_empty() {
            active = true;
            let n = timeline.n_qubits;
            for i in 0..timeline.dim {
                let mut delta = 0.0;
                for (q, eps) in s.detuning.iter().enumerate() {
                    // Big-endian: qubit q is bit n-1-q; Z = diag(+1, -1).
                    let bit = (i >> (n - 1 - q)) & 1;
                    delta += if bit == 0 { *eps } else { -*eps } / 2.0;
                }
                let cur = ws.h[(i, i)];
                ws.h[(i, i)] = c64(cur.re + delta, cur.im);
            }
        }
    }
    active
}

fn add_scaled(out: &mut Matrix, term: &Matrix, scale: f64) {
    for (o, t) in out.as_mut_slice().iter_mut().zip(term.as_slice()) {
        *o = c64(o.re + t.re * scale, o.im + t.im * scale);
    }
}

/// Accumulates the noiseless propagator of the timeline.
///
/// Returns the global unitary and the number of `expm` steps taken.
///
/// # Errors
///
/// Returns [`SimError::Eig`] if a step Hamiltonian fails to diagonalize.
pub fn propagate(timeline: &Timeline, ws: &mut SimWorkspace) -> Result<(Matrix, u64), SimError> {
    let _span = epoc_rt::telemetry::span("sim", "propagate");
    if epoc_rt::faults::fail_point("sim.propagate") {
        return Err(SimError::Injected { label: "sim.propagate" });
    }
    ws.u = Matrix::identity(timeline.dim);
    let mut steps = 0u64;
    let mut next_digital = 0usize;
    for w in timeline.breakpoints.windows(2) {
        let (a, b) = (w[0], w[1]);
        while next_digital < timeline.digitals.len()
            && timeline.digitals[next_digital].time <= a + TIME_TOL
        {
            let d = &timeline.digitals[next_digital];
            d.unitary.matmul_into(&ws.u, &mut ws.scratch);
            std::mem::swap(&mut ws.u, &mut ws.scratch);
            next_digital += 1;
        }
        let mid = 0.5 * (a + b);
        if !assemble_hamiltonian(timeline, mid, None, ws) {
            continue;
        }
        let (step, _) = expm_hermitian_propagator(&ws.h, b - a)?;
        steps += 1;
        step.matmul_into(&ws.u, &mut ws.scratch);
        std::mem::swap(&mut ws.u, &mut ws.scratch);
    }
    while next_digital < timeline.digitals.len() {
        let d = &timeline.digitals[next_digital];
        d.unitary.matmul_into(&ws.u, &mut ws.scratch);
        std::mem::swap(&mut ws.u, &mut ws.scratch);
        next_digital += 1;
    }
    Ok((ws.u.clone(), steps))
}

/// Runs one noisy Monte-Carlo trajectory from `|0…0⟩` with the RNG stream
/// `seed + shot` and returns the state fidelity against `target_state`
/// (the target unitary's first column) plus the `expm` step count.
///
/// Byte-determinism: every random draw happens at a point fixed by the
/// noise *config* and the timeline — never by previously drawn values —
/// so trajectory `shot` produces identical output regardless of how
/// trajectories are distributed over workers.
///
/// # Errors
///
/// Returns [`SimError::Eig`] if a step Hamiltonian fails to diagonalize.
pub fn run_trajectory(
    timeline: &Timeline,
    noise: &NoiseModel,
    seed: u64,
    shot: u64,
    target_state: &[Complex64],
    ws: &mut SimWorkspace,
) -> Result<(f64, u64), SimError> {
    let mut rng = Xoshiro256ss::seed_from_u64(seed.wrapping_add(shot));
    let sample = NoiseSample::draw(noise, timeline.n_qubits, &mut rng);

    ws.psi.clear();
    ws.psi.resize(timeline.dim, c64(0.0, 0.0));
    ws.psi[0] = c64(1.0, 0.0);
    let mut steps = 0u64;
    let mut next_digital = 0usize;

    for w in timeline.breakpoints.windows(2) {
        let (a, b) = (w[0], w[1]);
        while next_digital < timeline.digitals.len()
            && timeline.digitals[next_digital].time <= a + TIME_TOL
        {
            apply_digital(&timeline.digitals[next_digital].unitary, ws);
            next_digital += 1;
        }
        let mid = 0.5 * (a + b);
        if assemble_hamiltonian(timeline, mid, Some(&sample), ws) {
            let (step, _) = expm_hermitian_propagator(&ws.h, b - a)?;
            steps += 1;
            step.matvec_into(&ws.psi, &mut ws.psi_tmp);
            std::mem::swap(&mut ws.psi, &mut ws.psi_tmp);
        }
        if sample.has_jumps() {
            let dt = b - a;
            apply_jumps(&sample, dt, timeline.n_qubits, &mut rng, &mut ws.psi);
        }
    }
    while next_digital < timeline.digitals.len() {
        apply_digital(&timeline.digitals[next_digital].unitary, ws);
        next_digital += 1;
    }

    let overlap = target_state
        .iter()
        .zip(&ws.psi)
        .fold(c64(0.0, 0.0), |acc, (t, p)| {
            c64(
                acc.re + t.re * p.re + t.im * p.im,
                acc.im + t.re * p.im - t.im * p.re,
            )
        });
    Ok((overlap.re * overlap.re + overlap.im * overlap.im, steps))
}

fn apply_digital(u: &Matrix, ws: &mut SimWorkspace) {
    u.matvec_into(&ws.psi, &mut ws.psi_tmp);
    std::mem::swap(&mut ws.psi, &mut ws.psi_tmp);
}

/// One uniform draw per qubit decides: amplitude damping (`u < Δt/T1`),
/// else phase flip (`u < Δt/T1 + Δt·rφ`), else nothing. A damping jump on
/// a qubit with no excited population is a no-op (the draw still happens,
/// keeping streams aligned).
fn apply_jumps(
    sample: &NoiseSample,
    dt: f64,
    n_qubits: usize,
    rng: &mut impl Rng,
    psi: &mut [Complex64],
) {
    let p1 = dt * sample.r1;
    let pphi = dt * sample.rphi;
    for q in 0..n_qubits {
        let u = rng.gen_f64();
        let mask = 1usize << (n_qubits - 1 - q);
        if u < p1 {
            let excited: f64 = psi
                .iter()
                .enumerate()
                .filter(|(i, _)| i & mask != 0)
                .map(|(_, a)| a.re * a.re + a.im * a.im)
                .sum();
            if excited < 1e-30 {
                continue;
            }
            for i in 0..psi.len() {
                if i & mask != 0 {
                    psi[i - mask] = psi[i];
                    psi[i] = c64(0.0, 0.0);
                }
            }
            let norm = excited.sqrt();
            for a in psi.iter_mut() {
                *a = c64(a.re / norm, a.im / norm);
            }
        } else if u < p1 + pphi {
            for (i, a) in psi.iter_mut().enumerate() {
                if i & mask != 0 {
                    *a = c64(-a.re, -a.im);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::Gate;
    use epoc_pulse::{PulsePayload, PulseSchedule, ScheduledPulse};
    use std::sync::Arc;

    fn digital_schedule(gates: &[(Gate, Vec<usize>)], n: usize) -> PulseSchedule {
        let mut s = PulseSchedule::new(n);
        let mut t = 0.0;
        for (g, qs) in gates {
            s.push(ScheduledPulse {
                qubits: qs.clone(),
                start: t,
                duration: 10.0,
                fidelity: 1.0,
                label: g.name().to_string(),
                payload: PulsePayload::Unitary(Arc::new(g.unitary_matrix())),
            });
            t += 10.0;
        }
        s
    }

    #[test]
    fn digital_bell_propagator() {
        let s = digital_schedule(&[(Gate::H, vec![0]), (Gate::CX, vec![0, 1])], 2);
        let t = Timeline::lower(&s, 8).unwrap();
        let mut ws = SimWorkspace::new(t.dim);
        let (u, steps) = propagate(&t, &mut ws).unwrap();
        assert_eq!(steps, 0, "digital-only schedules take no expm steps");
        // U|00> = (|00> + |11>)/sqrt(2).
        let inv = 1.0 / 2f64.sqrt();
        assert!((u[(0, 0)].re - inv).abs() < 1e-12);
        assert!((u[(3, 0)].re - inv).abs() < 1e-12);
        assert!(u[(1, 0)].re.abs() < 1e-12 && u[(2, 0)].re.abs() < 1e-12);
    }

    #[test]
    fn noiseless_trajectory_matches_propagator_column() {
        let s = digital_schedule(&[(Gate::H, vec![0]), (Gate::CX, vec![0, 1])], 2);
        let t = Timeline::lower(&s, 8).unwrap();
        let mut ws = SimWorkspace::new(t.dim);
        let (u, _) = propagate(&t, &mut ws).unwrap();
        let target: Vec<Complex64> = (0..t.dim).map(|i| u[(i, 0)]).collect();
        let (fid, _) = run_trajectory(
            &t,
            &NoiseModel::noiseless(),
            7,
            0,
            &target,
            &mut ws,
        )
        .unwrap();
        assert!((fid - 1.0).abs() < 1e-12, "fid = {fid}");
    }

    #[test]
    fn damping_jump_is_deterministic_and_lossy() {
        // X then strong damping: with T1 tiny the jump fires and the state
        // returns to |0>, so fidelity vs the noiseless |1> target drops.
        let s = digital_schedule(&[(Gate::X, vec![0])], 1);
        let t = Timeline::lower(&s, 8).unwrap();
        let mut ws = SimWorkspace::new(t.dim);
        let noise = NoiseModel {
            detuning_sigma: 0.0,
            amplitude_sigma: 0.0,
            t1: 1.0,
            t2: 0.0,
        };
        let target = vec![c64(0.0, 0.0), c64(1.0, 0.0)];
        // The schedule spans one 10 ns digital "interval"... digital-only
        // schedules have a single breakpoint, so force an interval by
        // adding a second event later in time.
        let mut fids = Vec::new();
        for _ in 0..2 {
            let (fid, _) = run_trajectory(&t, &noise, 99, 3, &target, &mut ws).unwrap();
            fids.push(fid);
        }
        assert_eq!(fids[0].to_bits(), fids[1].to_bits(), "same seed, same bits");
    }
}

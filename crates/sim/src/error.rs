//! Typed simulator errors.

use epoc_linalg::EigError;
use epoc_qoc::DeviceError;

/// An error from schedule lowering or propagation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The register is wider than the dense simulation ceiling.
    TooWide {
        /// Register width of the schedule.
        n_qubits: usize,
        /// The configured width ceiling.
        max: usize,
    },
    /// Building the block-local device model failed (a waveform pulse
    /// wider than the transmon model supports).
    Device(DeviceError),
    /// A pulse carries no replay information, so the schedule cannot be
    /// simulated (e.g. a modeled block too wide for a dense unitary).
    OpaquePulse {
        /// Label of the offending pulse.
        label: String,
    },
    /// A frame update carries no unitary.
    OpaqueFrame {
        /// Label of the offending frame.
        label: String,
    },
    /// A waveform's channel count does not match its block-local device.
    ChannelMismatch {
        /// Label of the offending pulse.
        label: String,
        /// Channels the local device exposes.
        expected: usize,
        /// Channels the waveform carries.
        got: usize,
    },
    /// A payload's dimension does not match its qubit count.
    PayloadShape {
        /// Label of the offending pulse or frame.
        label: String,
    },
    /// The ground-truth unitary's dimension does not match the schedule.
    TargetShape {
        /// Expected dimension (`2^n_qubits`).
        expected: usize,
        /// The dimension that was supplied.
        got: usize,
    },
    /// The eigendecomposition of a step Hamiltonian failed.
    Eig(EigError),
    /// A deterministic fault-injection point fired (`epoc_rt::faults`) —
    /// only possible while a chaos test has the harness armed.
    Injected {
        /// The fail-point label that fired.
        label: &'static str,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::TooWide { n_qubits, max } => write!(
                f,
                "schedule register of {n_qubits} qubits exceeds the dense simulation limit {max}"
            ),
            SimError::Device(e) => write!(f, "device model: {e}"),
            SimError::OpaquePulse { label } => {
                write!(f, "pulse '{label}' carries no waveform or unitary to replay")
            }
            SimError::OpaqueFrame { label } => {
                write!(f, "frame '{label}' carries no unitary to replay")
            }
            SimError::ChannelMismatch { label, expected, got } => write!(
                f,
                "pulse '{label}': waveform has {got} channels, device exposes {expected}"
            ),
            SimError::PayloadShape { label } => {
                write!(f, "pulse '{label}': payload dimension does not match its qubit count")
            }
            SimError::TargetShape { expected, got } => {
                write!(f, "target unitary is {got}-dimensional, schedule needs {expected}")
            }
            SimError::Eig(e) => write!(f, "step Hamiltonian eigendecomposition failed: {e:?}"),
            SimError::Injected { label } => {
                write!(f, "injected fault '{label}' (fault-injection harness armed)")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<DeviceError> for SimError {
    fn from(e: DeviceError) -> Self {
        SimError::Device(e)
    }
}

impl From<EigError> for SimError {
    fn from(e: EigError) -> Self {
        SimError::Eig(e)
    }
}

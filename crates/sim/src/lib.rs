//! # epoc-sim — pulse-level device simulator
//!
//! Replays an emitted [`PulseSchedule`](epoc_pulse::PulseSchedule)
//! against the device Hamiltonian and scores it against the source
//! circuit's unitary — the closed-loop check the paper (and AccQOC) uses
//! to validate generated pulses, independent of GRAPE's own training
//! objective. A scheduling bug, a wrong block embedding, or cached-pulse
//! reuse in a mismatched context all show up here as lost fidelity even
//! when every per-block GRAPE fidelity looks perfect.
//!
//! The flow is [`Timeline::lower`] (schedule → global-register drive and
//! digital events on a piecewise-constant breakpoint grid) followed by
//! either the noiseless propagator ([`engine::propagate`]) or seeded
//! Monte-Carlo trajectories ([`engine::run_trajectory`]); [`simulate`]
//! wraps both and reports a [`SimOutcome`].
//!
//! Determinism contract: with a fixed seed, results are byte-identical at
//! any worker count — trajectory `i` always consumes the RNG stream
//! `seed + i`, and [`epoc_rt::pool::parallel_map`] returns results in
//! input order.

#![warn(missing_docs)]

pub mod engine;
mod error;
pub mod timeline;

pub use engine::{propagate, run_trajectory, SimWorkspace};
pub use error::SimError;
pub use timeline::{DigitalEvent, DriveEvent, Timeline};

use epoc_linalg::{Complex64, Matrix};
use epoc_pulse::PulseSchedule;
use epoc_rt::{pool, telemetry};

/// Quasi-static and Markovian noise knobs. A value of `0.0` disables the
/// corresponding term (there is no `Option` layering — `0.0` keeps the
/// JSON echo of the config finite and explicit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Std-dev of the per-qubit quasi-static detuning (rad/ns).
    pub detuning_sigma: f64,
    /// Std-dev of the per-qubit relative drive-amplitude error.
    pub amplitude_sigma: f64,
    /// Amplitude-damping time T1 (ns); `0.0` disables damping.
    pub t1: f64,
    /// Coherence time T2 (ns); `0.0` disables pure dephasing.
    pub t2: f64,
}

impl NoiseModel {
    /// No noise at all — trajectories reduce to the ideal evolution.
    pub fn noiseless() -> Self {
        Self {
            detuning_sigma: 0.0,
            amplitude_sigma: 0.0,
            t1: 0.0,
            t2: 0.0,
        }
    }

    /// A representative transmon operating point: 0.5 MHz detuning
    /// spread, 0.2 % amplitude error, T1 = 80 µs, T2 = 60 µs.
    pub fn standard() -> Self {
        Self {
            detuning_sigma: 2.0 * std::f64::consts::PI * 0.0005,
            amplitude_sigma: 0.002,
            t1: 80_000.0,
            t2: 60_000.0,
        }
    }

    /// `true` when every term is disabled.
    pub fn is_noiseless(&self) -> bool {
        self.detuning_sigma <= 0.0
            && self.amplitude_sigma <= 0.0
            && self.t1 <= 0.0
            && self.t2 <= 0.0
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::noiseless()
    }
}

/// Simulation controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Dense register ceiling — schedules wider than this are rejected
    /// ([`SimError::TooWide`]) rather than allocating `4^n` memory.
    pub max_qubits: usize,
    /// Number of Monte-Carlo trajectories (`0` = noiseless only).
    pub shots: usize,
    /// Base RNG seed; trajectory `i` uses stream `seed + i`.
    pub seed: u64,
    /// Worker threads for the trajectory fan-out (`0` = use
    /// [`pool::default_workers`]). Never affects results, only speed.
    pub workers: usize,
    /// The noise model sampled by trajectories.
    pub noise: NoiseModel,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            max_qubits: 8,
            shots: 0,
            seed: 0xE90C,
            workers: 0,
            noise: NoiseModel::noiseless(),
        }
    }
}

/// The result of replaying a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Phase-invariant process fidelity `|Tr(U†·T)| / d` of the noiseless
    /// replay against the target unitary.
    pub process_fidelity: f64,
    /// Average gate fidelity `(|Tr(U†·T)|² + d) / (d² + d)`.
    pub avg_gate_fidelity: f64,
    /// Total `expm` steps taken (noiseless pass plus all trajectories).
    pub steps: u64,
    /// Pulses replayed from GRAPE waveforms.
    pub waveform_pulses: usize,
    /// Pulses replayed as exact digital unitaries.
    pub digital_pulses: usize,
    /// Virtual frame updates applied.
    pub frames: usize,
    /// Per-trajectory state fidelities `|⟨target·0…0|ψ⟩|²`, in shot
    /// order (empty when `shots == 0`).
    pub trajectories: Vec<f64>,
}

impl SimOutcome {
    /// Mean of the trajectory fidelities (`None` when no shots ran).
    pub fn shot_mean(&self) -> Option<f64> {
        if self.trajectories.is_empty() {
            return None;
        }
        Some(self.trajectories.iter().sum::<f64>() / self.trajectories.len() as f64)
    }
}

/// Replays `schedule` and scores it against `target`, the source
/// circuit's unitary on the same register.
///
/// Telemetry: wraps the run in a `sim`/`simulate` span and bumps the
/// `sim.steps` and `sim.trajectories` counters.
///
/// # Errors
///
/// Returns [`SimError`] if the schedule cannot be lowered (too wide,
/// opaque payloads, channel mismatches), the target dimension is wrong,
/// or a step Hamiltonian fails to diagonalize.
pub fn simulate(
    schedule: &PulseSchedule,
    target: &Matrix,
    opts: &SimOptions,
) -> Result<SimOutcome, SimError> {
    let _span = telemetry::span("sim", "simulate");
    let timeline = Timeline::lower(schedule, opts.max_qubits)?;
    if target.rows() != timeline.dim || target.cols() != timeline.dim {
        return Err(SimError::TargetShape {
            expected: timeline.dim,
            got: target.rows(),
        });
    }

    let mut ws = SimWorkspace::new(timeline.dim);
    let (u, mut steps) = propagate(&timeline, &mut ws)?;

    // Tr(U† · T): the phase-invariant overlap both fidelities build on.
    let d = timeline.dim as f64;
    let mut tr_re = 0.0;
    let mut tr_im = 0.0;
    for (a, b) in u.as_slice().iter().zip(target.as_slice()) {
        tr_re += a.re * b.re + a.im * b.im;
        tr_im += a.re * b.im - a.im * b.re;
    }
    let tr_abs2 = tr_re * tr_re + tr_im * tr_im;
    let process_fidelity = tr_abs2.sqrt() / d;
    let avg_gate_fidelity = (tr_abs2 + d) / (d * d + d);

    let trajectories = if opts.shots > 0 {
        let _span = telemetry::span("sim", "trajectories");
        let target_state: Vec<Complex64> = (0..timeline.dim).map(|i| target[(i, 0)]).collect();
        let workers = if opts.workers == 0 {
            pool::default_workers()
        } else {
            opts.workers
        };
        let shots: Vec<u64> = (0..opts.shots as u64).collect();
        let results = pool::parallel_map(&shots, workers, |_, &shot| {
            let mut ws = SimWorkspace::new(timeline.dim);
            run_trajectory(&timeline, &opts.noise, opts.seed, shot, &target_state, &mut ws)
        });
        let mut fids = Vec::with_capacity(results.len());
        for r in results {
            let (fid, shot_steps) = r?;
            steps += shot_steps;
            fids.push(fid);
        }
        fids
    } else {
        Vec::new()
    };

    telemetry::counter_add("sim.steps", steps);
    telemetry::counter_add("sim.trajectories", trajectories.len() as u64);

    Ok(SimOutcome {
        process_fidelity,
        avg_gate_fidelity,
        steps,
        waveform_pulses: timeline.drives.len(),
        digital_pulses: timeline.digitals.len() - schedule.frames().len(),
        frames: schedule.frames().len(),
        trajectories,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::{Circuit, Gate};
    use epoc_pulse::{schedule_circuit, PulseCost};

    fn ghz_schedule() -> (PulseSchedule, Matrix) {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0])
            .push(Gate::CX, &[0, 1])
            .push(Gate::CX, &[1, 2]);
        let s = schedule_circuit(&c, |_| PulseCost {
            duration: 20.0,
            fidelity: 0.999,
        });
        let u = c.unitary();
        (s, u)
    }

    #[test]
    fn digital_replay_is_exact() {
        let (s, u) = ghz_schedule();
        let out = simulate(&s, &u, &SimOptions::default()).unwrap();
        assert!((out.process_fidelity - 1.0).abs() < 1e-12);
        assert!((out.avg_gate_fidelity - 1.0).abs() < 1e-12);
        assert_eq!(out.digital_pulses, 3);
        assert_eq!(out.waveform_pulses, 0);
        assert!(out.trajectories.is_empty());
    }

    #[test]
    fn noiseless_shots_hit_unity() {
        let (s, u) = ghz_schedule();
        let opts = SimOptions {
            shots: 4,
            ..SimOptions::default()
        };
        let out = simulate(&s, &u, &opts).unwrap();
        assert_eq!(out.trajectories.len(), 4);
        for f in &out.trajectories {
            assert!((f - 1.0).abs() < 1e-12);
        }
        assert!((out.shot_mean().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_shots_deterministic_across_worker_counts() {
        let (s, u) = ghz_schedule();
        let mut opts = SimOptions {
            shots: 8,
            noise: NoiseModel::standard(),
            workers: 1,
            ..SimOptions::default()
        };
        let one = simulate(&s, &u, &opts).unwrap();
        opts.workers = 4;
        let four = simulate(&s, &u, &opts).unwrap();
        assert_eq!(one, four);
        // Noise actually moves the needle somewhere below exactly 1.
        assert!(one.trajectories.iter().any(|f| *f < 1.0));
    }

    #[test]
    fn rejects_wrong_target_shape() {
        let (s, _) = ghz_schedule();
        let wrong = Matrix::identity(4);
        assert_eq!(
            simulate(&s, &wrong, &SimOptions::default()).unwrap_err(),
            SimError::TargetShape {
                expected: 8,
                got: 4
            }
        );
    }
}

//! Schedule → global-register timeline lowering.
//!
//! A [`PulseSchedule`] is block-local: each pulse's payload (waveform or
//! dense unitary) lives on the qubits of its own block, optimized against
//! a block-sized [`DeviceModel`]. The simulator needs everything on the
//! *global* register, so lowering:
//!
//! 1. embeds every waveform pulse's block-local drift and control
//!    Hamiltonians into the full `2^n` space (`Matrix::embed`),
//! 2. turns unitary-payload pulses and frame updates into time-stamped
//!    digital events with embedded matrices, and
//! 3. collects every waveform slot edge, pulse boundary, and digital
//!    timestamp into a sorted, deduplicated breakpoint grid — within one
//!    interval the total Hamiltonian is constant, so the propagator can
//!    take exact `expm` steps.
//!
//! Ordering of digital events at equal times follows the schedule
//! invariant: frames precede pulses starting at the same instant on a
//! shared line (physical pulses advance the line clock, so a frame that
//! *follows* a pulse always lands at the pulse's end, a distinct time).

use crate::error::SimError;
use epoc_linalg::Matrix;
use epoc_pulse::{PulsePayload, PulseSchedule};
use epoc_qoc::{DeviceModel, PulseWaveform};
use std::collections::HashMap;
use std::sync::Arc;

/// Breakpoint deduplication tolerance (ns).
pub const TIME_TOL: f64 = 1e-9;

/// A waveform pulse lowered onto the global register.
#[derive(Debug, Clone)]
pub struct DriveEvent {
    /// Display label of the source pulse.
    pub label: String,
    /// Global qubits the drive acts on (block order — channel `2j`/`2j+1`
    /// are the X/Y drives of `qubits[j]`).
    pub qubits: Vec<usize>,
    /// Start time (ns).
    pub start: f64,
    /// End time (ns).
    pub end: f64,
    /// The block's piecewise-constant control amplitudes.
    pub waveform: Arc<PulseWaveform>,
    /// Block-local drift embedded into the global register.
    pub drift: Matrix,
    /// Block-local control Hamiltonians embedded into the global register,
    /// one per waveform channel.
    pub channels: Vec<Matrix>,
}

/// A unitary applied as one exact step (a frame update or a
/// unitary-payload pulse), embedded into the global register.
#[derive(Debug, Clone)]
pub struct DigitalEvent {
    /// Application time (ns).
    pub time: f64,
    /// The embedded global unitary.
    pub unitary: Matrix,
    /// Display label of the source pulse or frame.
    pub label: String,
    /// Equal-time ordering class: frames (0) before pulses (1).
    class: u8,
    /// Insertion order within the schedule, the final tie-break.
    seq: usize,
}

/// The lowered, simulation-ready form of a schedule.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Register width.
    pub n_qubits: usize,
    /// Hilbert-space dimension (`2^n_qubits`).
    pub dim: usize,
    /// Waveform drives in schedule order.
    pub drives: Vec<DriveEvent>,
    /// Digital events sorted by `(time, frame-before-pulse, insertion)`.
    pub digitals: Vec<DigitalEvent>,
    /// Sorted, deduplicated grid of piecewise-constant intervals.
    pub breakpoints: Vec<f64>,
}

impl Timeline {
    /// Lowers a schedule onto the global register.
    ///
    /// # Errors
    ///
    /// Returns an error if the register exceeds `max_qubits`, any pulse is
    /// opaque or malformed, or a block-local device model cannot be built.
    pub fn lower(schedule: &PulseSchedule, max_qubits: usize) -> Result<Self, SimError> {
        let n = schedule.n_qubits();
        if n > max_qubits {
            return Err(SimError::TooWide {
                n_qubits: n,
                max: max_qubits,
            });
        }
        let dim = 1usize << n;

        let mut devices: HashMap<usize, DeviceModel> = HashMap::new();
        let mut embeddings: HashMap<Vec<usize>, (Matrix, Vec<Matrix>)> = HashMap::new();
        let mut drives = Vec::new();
        let mut digitals = Vec::new();
        let mut seq = 0usize;

        for pulse in schedule.pulses() {
            let k = pulse.qubits.len();
            match &pulse.payload {
                PulsePayload::Waveform(w) => {
                    let device = match devices.entry(k) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(DeviceModel::transmon_line(k)?)
                        }
                    };
                    if w.n_channels() != device.controls().len() {
                        return Err(SimError::ChannelMismatch {
                            label: pulse.label.clone(),
                            expected: device.controls().len(),
                            got: w.n_channels(),
                        });
                    }
                    let (drift, channels) = embeddings
                        .entry(pulse.qubits.clone())
                        .or_insert_with(|| {
                            let drift = device.drift().embed(&pulse.qubits, n);
                            let channels = device
                                .controls()
                                .iter()
                                .map(|c| c.hamiltonian.embed(&pulse.qubits, n))
                                .collect();
                            (drift, channels)
                        })
                        .clone();
                    drives.push(DriveEvent {
                        label: pulse.label.clone(),
                        qubits: pulse.qubits.clone(),
                        start: pulse.start,
                        end: pulse.end(),
                        waveform: Arc::clone(w),
                        drift,
                        channels,
                    });
                }
                PulsePayload::Unitary(u) => {
                    if u.rows() != (1usize << k) || u.cols() != (1usize << k) {
                        return Err(SimError::PayloadShape {
                            label: pulse.label.clone(),
                        });
                    }
                    digitals.push(DigitalEvent {
                        time: pulse.start,
                        unitary: u.embed(&pulse.qubits, n),
                        label: pulse.label.clone(),
                        class: 1,
                        seq,
                    });
                }
                PulsePayload::Opaque => {
                    return Err(SimError::OpaquePulse {
                        label: pulse.label.clone(),
                    });
                }
            }
            seq += 1;
        }

        for frame in schedule.frames() {
            let u = frame.unitary.as_ref().ok_or_else(|| SimError::OpaqueFrame {
                label: frame.label.clone(),
            })?;
            let k = frame.qubits.len();
            if u.rows() != (1usize << k) || u.cols() != (1usize << k) {
                return Err(SimError::PayloadShape {
                    label: frame.label.clone(),
                });
            }
            digitals.push(DigitalEvent {
                time: frame.time,
                unitary: u.embed(&frame.qubits, n),
                label: frame.label.clone(),
                class: 0,
                seq,
            });
            seq += 1;
        }

        digitals.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .expect("finite event times")
                .then(a.class.cmp(&b.class))
                .then(a.seq.cmp(&b.seq))
        });

        let mut breakpoints = vec![0.0f64];
        for d in &drives {
            let dt = d.waveform.dt();
            for s in 0..=d.waveform.n_slots() {
                breakpoints.push(d.start + s as f64 * dt);
            }
            breakpoints.push(d.end);
        }
        for d in &digitals {
            breakpoints.push(d.time);
        }
        breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        breakpoints.dedup_by(|next, kept| (*next - *kept).abs() <= TIME_TOL);

        Ok(Self {
            n_qubits: n,
            dim,
            drives,
            digitals,
            breakpoints,
        })
    }

    /// `true` when `drive` is active over a step whose midpoint is `mid`.
    pub fn drive_active(drive: &DriveEvent, mid: f64) -> bool {
        mid >= drive.start && mid <= drive.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_pulse::{FrameUpdate, PulsePayload, ScheduledPulse};

    fn waveform_pulse(qubits: Vec<usize>, start: f64, slots: usize) -> ScheduledPulse {
        let k = qubits.len();
        let dt = 2.0;
        let w = PulseWaveform::new(dt, vec![vec![0.01; slots]; 2 * k]);
        ScheduledPulse {
            qubits,
            start,
            duration: slots as f64 * dt,
            fidelity: 1.0,
            label: "blk".into(),
            payload: PulsePayload::Waveform(Arc::new(w)),
        }
    }

    #[test]
    fn lowers_waveforms_with_embeddings() {
        let mut s = PulseSchedule::new(3);
        s.push(waveform_pulse(vec![0, 2], 0.0, 3));
        let t = Timeline::lower(&s, 8).unwrap();
        assert_eq!(t.dim, 8);
        assert_eq!(t.drives.len(), 1);
        assert_eq!(t.drives[0].channels.len(), 4);
        assert_eq!(t.drives[0].drift.rows(), 8);
        // Breakpoints: slot edges 0,2,4,6 (end coincides with last edge).
        assert_eq!(t.breakpoints, vec![0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn frames_sort_before_pulses_at_equal_time() {
        let mut s = PulseSchedule::new(1);
        s.push(ScheduledPulse {
            qubits: vec![0],
            start: 4.0,
            duration: 2.0,
            fidelity: 1.0,
            label: "p".into(),
            payload: PulsePayload::Unitary(Arc::new(epoc_circuit::Gate::X.unitary_matrix())),
        });
        s.push_frame(FrameUpdate {
            qubits: vec![0],
            time: 4.0,
            unitary: Some(Arc::new(epoc_circuit::Gate::Z.unitary_matrix())),
            label: "f".into(),
        });
        let t = Timeline::lower(&s, 8).unwrap();
        assert_eq!(t.digitals.len(), 2);
        assert_eq!(t.digitals[0].label, "f");
        assert_eq!(t.digitals[1].label, "p");
    }

    #[test]
    fn rejects_opaque_and_wide() {
        let mut s = PulseSchedule::new(1);
        s.push(ScheduledPulse {
            qubits: vec![0],
            start: 0.0,
            duration: 1.0,
            fidelity: 1.0,
            label: "mystery".into(),
            payload: PulsePayload::Opaque,
        });
        assert!(matches!(
            Timeline::lower(&s, 8),
            Err(SimError::OpaquePulse { .. })
        ));
        let wide = PulseSchedule::new(9);
        assert_eq!(
            Timeline::lower(&wide, 8).unwrap_err(),
            SimError::TooWide {
                n_qubits: 9,
                max: 8
            }
        );
    }

    #[test]
    fn rejects_channel_mismatch() {
        let mut s = PulseSchedule::new(2);
        // 2-qubit block but only 1 channel row.
        let w = PulseWaveform::new(2.0, vec![vec![0.01; 2]]);
        s.push(ScheduledPulse {
            qubits: vec![0, 1],
            start: 0.0,
            duration: 4.0,
            fidelity: 1.0,
            label: "bad".into(),
            payload: PulsePayload::Waveform(Arc::new(w)),
        });
        assert!(matches!(
            Timeline::lower(&s, 8),
            Err(SimError::ChannelMismatch { expected: 4, got: 1, .. })
        ));
    }
}

//! Property tests: the noiseless replay matches the circuit→unitary
//! evaluator (ISSUE satellite — seeded via `epoc_rt::check` with pinned
//! regression streams).

use epoc_circuit::{Circuit, Gate};
use epoc_linalg::phase_invariant_distance;
use epoc_pulse::{schedule_circuit, PulseCost, PulseSchedule, PulsePayload, ScheduledPulse};
use epoc_qoc::{propagate as grape_propagate, DeviceModel, PulseWaveform};
use epoc_rt::check::{property, Gen};
use epoc_sim::{simulate, SimOptions};
use std::sync::Arc;

fn random_gate(g: &mut Gen) -> (Gate, usize) {
    match g.usize_in(0, 10) {
        0 => (Gate::H, 1),
        1 => (Gate::X, 1),
        2 => (Gate::Y, 1),
        3 => (Gate::Z, 1),
        4 => (Gate::S, 1),
        5 => (Gate::T, 1),
        6 => (Gate::RZ(g.f64_in(-3.0, 3.0)), 1),
        7 => (Gate::RX(g.f64_in(-3.0, 3.0)), 1),
        8 => (Gate::RY(g.f64_in(-3.0, 3.0)), 1),
        _ => (Gate::CX, 2),
    }
}

/// Random single- and two-qubit gate schedules replay exactly: the
/// digital payloads recorded by `schedule_circuit` compose to the same
/// unitary as the circuit evaluator, RZs riding along as frame updates.
#[test]
fn digital_replay_matches_circuit_unitary() {
    property("sim_digital_replay_matches_unitary")
        .cases(48)
        .regression(&[3, 7, 0, 0, 9, 2, 1, 5])
        .regression(&[9, 1, 4, 4, 4, 0, 6, 6, 2, 8])
        .run(|g| {
            let n = g.usize_in(1, 4);
            let n_ops = g.usize_in(1, 7);
            let mut c = Circuit::new(n);
            for _ in 0..n_ops {
                let (gate, arity) = random_gate(g);
                if arity == 2 && n >= 2 {
                    let a = g.usize_in(0, n);
                    let b = (a + 1 + g.usize_in(0, n - 1)) % n;
                    c.push(gate, &[a, b]);
                } else if arity == 1 {
                    let q = g.usize_in(0, n);
                    c.push(gate, &[q]);
                }
            }
            // RZs become zero-duration frames, everything else a pulse.
            let s = schedule_circuit(&c, |op| PulseCost {
                duration: if matches!(op.gate, Gate::RZ(_)) { 0.0 } else { 20.0 },
                fidelity: 1.0,
            });
            let target = c.unitary();
            let out = simulate(&s, &target, &SimOptions::default()).unwrap();
            assert!(
                out.process_fidelity > 1.0 - 1e-9,
                "replay diverged: fid = {} on {:?}",
                out.process_fidelity,
                c
            );
        });
}

/// Random piecewise-constant waveforms on a block replay to the same
/// unitary GRAPE's own propagator computes for them — including when the
/// block sits embedded inside a wider register.
#[test]
fn waveform_replay_matches_grape_propagator() {
    property("sim_waveform_replay_matches_grape")
        .cases(24)
        .regression(&[1, 0, 2, 5, 5, 5, 0, 8])
        .run(|g| {
            let k = g.usize_in(1, 3);
            let n = k + g.usize_in(0, 2);
            let device = DeviceModel::transmon_line(k).unwrap();
            let n_slots = g.usize_in(1, 9);
            let amp = device.max_amplitude();
            let controls: Vec<Vec<f64>> = (0..device.controls().len())
                .map(|_| (0..n_slots).map(|_| g.f64_in(-amp, amp)).collect())
                .collect();

            // Pick k distinct qubits of the n-qubit register, any order.
            let mut qubits: Vec<usize> = (0..n).collect();
            for i in (1..qubits.len()).rev() {
                let j = g.usize_in(0, i + 1);
                qubits.swap(i, j);
            }
            qubits.truncate(k);

            let local = grape_propagate(&device, &controls).unwrap();
            let target = local.embed(&qubits, n);

            let mut s = PulseSchedule::new(n);
            let start = g.f64_in(0.0, 10.0);
            let w = PulseWaveform::new(device.dt(), controls);
            s.push(ScheduledPulse {
                qubits,
                start,
                duration: w.duration(),
                fidelity: 1.0,
                label: "blk0".into(),
                payload: PulsePayload::Waveform(Arc::new(w)),
            });

            let out = simulate(&s, &target, &SimOptions::default()).unwrap();
            // phase_invariant_distance on the replayed propagator itself
            // is implied by the fidelity simulate() reports.
            assert!(
                1.0 - out.process_fidelity < 1e-6,
                "waveform replay diverged: fid = {}",
                out.process_fidelity
            );
        });
}

/// The frame-before-pulse ordering invariant holds for mixed
/// virtual/physical circuits: interleaved RZs land on the correct side of
/// their neighboring pulses.
#[test]
fn interleaved_frames_compose_in_circuit_order() {
    property("sim_interleaved_frames_ordering")
        .cases(32)
        .regression(&[2, 6, 1, 3, 0, 0, 4])
        .run(|g| {
            let n = g.usize_in(1, 3);
            let mut c = Circuit::new(n);
            for _ in 0..g.usize_in(2, 9) {
                let q = g.usize_in(0, n);
                if g.bool() {
                    c.push(Gate::RZ(g.f64_in(-3.0, 3.0)), &[q]);
                } else {
                    c.push(Gate::H, &[q]);
                }
            }
            let s = schedule_circuit(&c, |op| PulseCost {
                duration: if matches!(op.gate, Gate::RZ(_)) { 0.0 } else { 20.0 },
                fidelity: 1.0,
            });
            let target = c.unitary();
            let out = simulate(&s, &target, &SimOptions::default()).unwrap();
            assert!(
                out.process_fidelity > 1.0 - 1e-9,
                "frame ordering broke replay: fid = {} on {:?}",
                out.process_fidelity,
                c
            );
        });
}

/// Direct check that a waveform-replayed propagator is close in the
/// phase-invariant metric, not just in trace fidelity: rebuild the
/// propagator through the public engine API and compare matrices.
#[test]
fn engine_propagator_is_phase_close_to_local_embed() {
    let device = DeviceModel::transmon_line(2).unwrap();
    let controls: Vec<Vec<f64>> = (0..4)
        .map(|ch| (0..5).map(|s| 0.01 * ((ch + s) as f64 - 3.0)).collect())
        .collect();
    let local = grape_propagate(&device, &controls).unwrap();
    let w = PulseWaveform::new(device.dt(), controls);
    let mut s = PulseSchedule::new(2);
    s.push(ScheduledPulse {
        qubits: vec![0, 1],
        start: 6.0,
        duration: w.duration(),
        fidelity: 1.0,
        label: "blk0".into(),
        payload: PulsePayload::Waveform(Arc::new(w)),
    });
    let t = epoc_sim::Timeline::lower(&s, 8).unwrap();
    let mut ws = epoc_sim::SimWorkspace::new(t.dim);
    let (u, steps) = epoc_sim::propagate(&t, &mut ws).unwrap();
    assert_eq!(steps, 5, "one expm step per slot");
    assert!(phase_invariant_distance(&u, &local) < 1e-9);
}

/// Conditioned waveforms replay like any other waveform — and since
/// conditioning (slew-clip → quantize → filter → crosstalk) is a pure
/// serial transform, the simulated fidelity of the conditioned schedule
/// is bitwise identical run to run, while measurably departing from the
/// raw waveform the conditioned controls were derived from.
#[test]
fn conditioned_waveform_replay_is_deterministic() {
    let profile = epoc_hw::HardwareProfile::transmon_awg_8bit();
    let device = DeviceModel::transmon_line(1).unwrap();
    let amp = device.max_amplitude();
    let n_slots = 24;
    // A smooth two-channel drive well inside the amplitude bound.
    let raw: Vec<Vec<f64>> = (0..device.controls().len())
        .map(|c| {
            (0..n_slots)
                .map(|s| 0.6 * amp * ((s + 3 * c) as f64 * 0.37).sin())
                .collect()
        })
        .collect();
    let mut conditioned = raw.clone();
    let mut ws = epoc_hw::ConditionWorkspace::new();
    profile.condition_controls(device.dt(), amp, &mut conditioned, &mut ws);
    assert_ne!(raw, conditioned, "8-bit profile should distort the drive");

    // Score both schedules against the *raw* propagator: the conditioned
    // replay must land below the raw one (distortion is real), and both
    // replays must be bitwise reproducible.
    let target = grape_propagate(&device, &raw).unwrap();
    let fid_of = |controls: &[Vec<f64>]| {
        let w = PulseWaveform::new(device.dt(), controls.to_vec());
        let mut s = PulseSchedule::new(1);
        s.push(ScheduledPulse {
            qubits: vec![0],
            start: 0.0,
            duration: w.duration(),
            fidelity: 1.0,
            label: "blk0".into(),
            payload: PulsePayload::Waveform(Arc::new(w)),
        });
        simulate(&s, &target, &SimOptions::default()).unwrap().process_fidelity
    };
    let raw_fid = fid_of(&raw);
    let cond_fid = fid_of(&conditioned);
    assert!(1.0 - raw_fid < 1e-6, "raw replay diverged: {raw_fid}");
    assert!(cond_fid < raw_fid, "conditioning should cost fidelity");
    assert!(cond_fid > 0.5, "distortion should be moderate: {cond_fid}");
    assert_eq!(
        cond_fid.to_bits(),
        fid_of(&conditioned).to_bits(),
        "conditioned replay must be bitwise reproducible"
    );
}

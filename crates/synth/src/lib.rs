//! # epoc-synth — numerical circuit synthesis (QSearch/BQSKit-style)
//!
//! The paper's Algorithm 2: A* heuristic search over circuit templates of
//! *variable unitary gates* (VUGs) and CNOTs, with numerical instantiation
//! of the VUG parameters by Adam on an analytic gradient of the
//! phase-invariant Hilbert–Schmidt cost, plus LEAP-style prefix commitment
//! for deeper targets.
//!
//! ## Example
//!
//! ```
//! use epoc_circuit::Gate;
//! use epoc_synth::{synthesize, SynthConfig};
//!
//! let result = synthesize(&Gate::CZ.unitary_matrix(), &SynthConfig::default()).unwrap();
//! assert!(result.converged);
//! assert!(result.cnots <= 2);
//! ```

#![warn(missing_docs)]

mod search;
mod template;

pub use search::{
    lower_to_vug_form, synthesize, synthesize_or_fallback, synthesize_with_cancel, SynthConfig,
    SynthError, SynthResult,
};
pub use template::{Axis, InstantiateOptions, Segment, Template};

use epoc_circuit::Gate;
use epoc_linalg::Matrix;

/// Classifies a 2×2 unitary as the cheapest gate that implements it:
///
/// * ≈ identity (up to phase) → `None` (no gate at all);
/// * diagonal (up to phase) → a virtual [`Gate::RZ`] (free on transmons);
/// * anything else → an opaque 1-qubit VUG.
pub fn vug_gate(u: &Matrix) -> Option<Gate> {
    const TOL: f64 = 1e-8;
    if epoc_linalg::phase_invariant_distance(u, &Matrix::identity(2)) < TOL {
        return None;
    }
    if u[(0, 1)].abs() < TOL && u[(1, 0)].abs() < TOL {
        let angle = u[(1, 1)].arg() - u[(0, 0)].arg();
        return Some(Gate::RZ(angle));
    }
    Some(Gate::unitary("vug", u.clone()))
}

//! The paper's Algorithm 2: heuristic (A*) circuit synthesis with LEAP-style
//! prefix commitment for deeper targets.
//!
//! Nodes are template structures (CNOT placements); expanding a node
//! appends one `CNOT + VUG·VUG` cell at every qubit pair. Each node is
//! scored by numerically instantiating its VUG parameters against the
//! target; the search pops the node minimizing
//! `distance + cnot_weight · #CNOTs` until a node reaches the accuracy
//! threshold (`AccuracyThreshold` in the paper's pseudocode).

use crate::template::{InstantiateOptions, Template};
use epoc_circuit::{Circuit, Gate};
use epoc_linalg::Matrix;
use epoc_rt::faults;
use epoc_rt::rng::StdRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// A synthesis failure. Running out of node budget is *not* an error —
/// that is a best-effort [`SynthResult`] with `converged: false`; these
/// are malformed inputs and lowering defects.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// The target matrix is not square.
    NotSquare,
    /// The target dimension is not a power of two ≥ 2.
    BadDimension(usize),
    /// The target is not unitary (to 1e-7).
    NotUnitary,
    /// [`lower_to_vug_form`] met an opaque block wider than one qubit.
    OpaqueBlock {
        /// Dimension of the offending opaque block.
        dim: usize,
    },
    /// The analytic lowering failed or produced an unexpected gate.
    Lowering(String),
    /// The search was cancelled hard (explicit cancel or a wall-clock
    /// deadline). Unlike budget exhaustion — which returns a best-effort
    /// non-converged result — this aborts the job.
    Canceled(epoc_rt::cancel::CancelReason),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotSquare => write!(f, "synthesis target must be square"),
            Self::BadDimension(d) => {
                write!(f, "synthesis target dimension {d} is not a power of two >= 2")
            }
            Self::NotUnitary => write!(f, "synthesis target is not unitary"),
            Self::OpaqueBlock { dim } => write!(
                f,
                "lower_to_vug_form only passes through 1-qubit opaque blocks (got dim {dim})"
            ),
            Self::Lowering(msg) => write!(f, "analytic lowering failed: {msg}"),
            Self::Canceled(reason) => write!(f, "synthesis {reason}"),
        }
    }
}

impl std::error::Error for SynthError {}

/// Deterministic fingerprint of the target for fault-injection keys.
fn fault_fingerprint(m: &Matrix) -> u64 {
    let mut h = faults::mix(0, m.rows() as u64);
    for z in m.as_slice() {
        h = faults::mix(h, z.re.to_bits());
        h = faults::mix(h, z.im.to_bits());
    }
    h
}

/// Synthesis configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Stop when the phase-invariant distance drops below this.
    pub distance_threshold: f64,
    /// Hard cap on CNOT cells per candidate.
    pub max_cnots: usize,
    /// Hard cap on instantiated nodes before giving up.
    pub max_nodes: usize,
    /// A* weight per CNOT (trades gate count against search time).
    pub cnot_weight: f64,
    /// LEAP: after this many expansions without improvement, commit the
    /// best structure as the new root and restart the queue. `0` disables.
    pub leap_patience: usize,
    /// Numerical instantiation options.
    pub instantiate: InstantiateOptions,
    /// RNG seed (synthesis is deterministic given the seed).
    pub seed: u64,
    /// Worker threads instantiating frontier candidates. Each candidate's
    /// optimization is seeded purely by `(seed, candidate sequence
    /// number)` and replayed into the search state in claim order, so
    /// node counts, structures, and distances are **byte-identical at any
    /// worker count**. `1` (the default) runs on the calling thread.
    pub workers: usize,
    /// How many A* nodes each round claims off the frontier for batch
    /// expansion. The claim width — not the worker count — determines the
    /// search trajectory; it is a fixed property of the configuration, so
    /// changing `workers` only changes who computes what. The default of
    /// `1` is plain best-first search (each round still evaluates all of
    /// the claimed node's children in parallel); widths above 1 expose
    /// more parallelism per round at the cost of expanding nodes a strict
    /// best-first order might never reach.
    pub frontier_width: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            distance_threshold: 1e-5,
            max_cnots: 10,
            max_nodes: 200,
            cnot_weight: 0.05,
            leap_patience: 12,
            instantiate: InstantiateOptions::default(),
            seed: 0xEC0C,
            workers: 1,
            frontier_width: 1,
        }
    }
}

/// The result of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthResult {
    /// The synthesized circuit (VUGs + CNOTs) on the target's qubit count.
    pub circuit: Circuit,
    /// Final phase-invariant distance to the target.
    pub distance: f64,
    /// CNOT count of the result.
    pub cnots: usize,
    /// Nodes instantiated during search.
    pub nodes_evaluated: usize,
    /// `true` when the threshold was met (otherwise best-effort result).
    pub converged: bool,
}

/// A search node. Template structure and instantiated parameters are
/// behind `Rc`: the heap, the best-so-far bookkeeping, and LEAP restarts
/// all share one allocation per evaluated node instead of deep-copying
/// segment and parameter vectors at every improvement. The only deep
/// template copy left is the structural one at expansion time, when a
/// child genuinely differs from its parent by an appended cell.
#[derive(Debug)]
struct Node {
    template: Rc<Template>,
    params: Rc<Vec<f64>>,
    distance: f64,
    score: f64,
    /// Creation sequence number — the deterministic tie-break: equal
    /// scores pop in creation order, making the heap's pop sequence a
    /// total order independent of insertion history (and therefore of any
    /// batching the parallel frontier does).
    seq: u64,
}

impl Node {
    /// A cheap handle-copy (shares template and params).
    fn share(&self) -> Self {
        Self {
            template: Rc::clone(&self.template),
            params: Rc::clone(&self.params),
            distance: self.distance,
            score: self.score,
            seq: self.seq,
        }
    }
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.seq == other.seq
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (score, creation sequence).
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A frontier candidate shipped to the evaluation crew: the structure to
/// instantiate plus its sequence number, which seeds the optimization.
struct EvalJob {
    template: Template,
    seq: u64,
}

/// What the crew hands back: the instantiated candidate, ready to become
/// a [`Node`] during the serial replay phase.
struct EvalOut {
    template: Template,
    seq: u64,
    params: Vec<f64>,
    distance: f64,
}

/// Synthesizes a circuit implementing `target` (up to global phase) from
/// VUGs and CNOTs.
///
/// Returns a best-effort [`SynthResult`] even when the threshold is not
/// reached within the node budget (check [`SynthResult::converged`]).
///
/// # Errors
///
/// Returns [`SynthError`] if `target` is not square with power-of-two
/// dimension ≥ 2, or is not unitary.
///
/// # Examples
///
/// ```
/// use epoc_circuit::Gate;
/// use epoc_synth::{synthesize, SynthConfig};
///
/// let r = synthesize(&Gate::CZ.unitary_matrix(), &SynthConfig::default()).unwrap();
/// assert!(r.converged);
/// assert!(r.distance < 1e-5);
/// ```
pub fn synthesize(target: &Matrix, config: &SynthConfig) -> Result<SynthResult, SynthError> {
    synthesize_with_cancel(target, config, &epoc_rt::cancel::CancelScope::none())
}

/// [`synthesize`] with a cooperative-cancellation scope polled at the A*
/// claim loop. Each expansion batch charges its node count against the
/// scope's QSearch budget *before* being computed; exhaustion ends the
/// search exactly like a `max_nodes` blow-through (a best-effort,
/// non-converged result), so budgeted outcomes are byte-identical at any
/// worker count.
///
/// # Errors
///
/// All of [`synthesize`]'s errors, plus [`SynthError::Canceled`] when
/// the scope's token is cancelled or past its deadline.
pub fn synthesize_with_cancel(
    target: &Matrix,
    config: &SynthConfig,
    cancel: &epoc_rt::cancel::CancelScope,
) -> Result<SynthResult, SynthError> {
    let _span = epoc_rt::telemetry::span("synth", "qsearch");
    cancel.poll().map_err(SynthError::Canceled)?;
    if !target.is_square() {
        return Err(SynthError::NotSquare);
    }
    let dim = target.rows();
    if dim < 2 || !dim.is_power_of_two() {
        return Err(SynthError::BadDimension(dim));
    }
    if !target.is_unitary(1e-7) {
        return Err(SynthError::NotUnitary);
    }
    let n = dim.trailing_zeros() as usize;
    // Optimizing below the success threshold is wasted work: stop the
    // numerical instantiation once cost = distance² is good enough.
    let config = &SynthConfig {
        instantiate: crate::template::InstantiateOptions {
            cost_threshold: config
                .instantiate
                .cost_threshold
                .max(config.distance_threshold * config.distance_threshold * 0.25),
            ..config.instantiate
        },
        ..config.clone()
    };

    // Single-qubit targets: one VUG, no search.
    if n == 1 {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let t = Template::initial(1);
        let (params, dist) = t.instantiate(target, &mut rng, &config.instantiate);
        let circuit = t.to_circuit(&params);
        record_search_telemetry(1);
        return Ok(SynthResult {
            distance: dist,
            cnots: 0,
            nodes_evaluated: 1,
            converged: dist < config.distance_threshold,
            circuit: ensure_nonempty_1q(circuit, target),
        });
    }

    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|a| (0..n).filter(move |&b| b != a).map(move |b| (a, b)))
        .collect();

    // Candidate instantiation, run by the evaluation crew. The optimizer
    // RNG is seeded purely by `(config.seed, seq)`, so each result is a
    // function of the job alone — independent of which worker computes it
    // and of how jobs are batched into rounds.
    let job = |_idx: usize, j: &EvalJob| -> EvalOut {
        let mut rng = StdRng::seed_from_u64(faults::mix(config.seed, j.seq));
        let (params, distance) = j.template.instantiate(target, &mut rng, &config.instantiate);
        EvalOut {
            template: j.template.clone(),
            seq: j.seq,
            params,
            distance,
        }
    };

    // The A* loop runs in four repeating stages — claim (pop a frontier
    // batch), compute (instantiate all children on the crew), replay
    // (merge results serially in claim order), leap (restart bookkeeping).
    // Everything order-sensitive happens in the serial stages, so the
    // trajectory is byte-identical at any `config.workers`.
    epoc_rt::pool::with_crew(config.workers, job, |crew| {
        let mut next_seq = 0u64;
        let make_node = |out: EvalOut| -> Node {
            let score = out.distance + config.cnot_weight * out.template.cnot_count() as f64;
            Node {
                template: Rc::new(out.template),
                params: Rc::new(out.params),
                distance: out.distance,
                score,
                seq: out.seq,
            }
        };
        let mut nodes_evaluated = 0usize;
        let root_template = Template::initial(n);
        let mut root_out = crew.dispatch(vec![EvalJob {
            template: root_template,
            seq: next_seq,
        }]);
        next_seq += 1;
        let root = make_node(root_out.pop().expect("root evaluation"));
        nodes_evaluated += 1;
        let mut best = root.share();
        let mut heap = BinaryHeap::new();
        heap.push(root);
        let mut since_improvement = 0usize;

        // Fail point `qsearch.budget`: an injected budget exhaustion before
        // the A* loop — the root comes back non-converged, exactly like a
        // genuine `max_nodes` blow-through. Keyed by (target, budget, seed)
        // so the fate is a pure function of the work item, and fresh for
        // every budget escalation the recovery ladder tries.
        if faults::is_armed() {
            let key = faults::mix(
                fault_fingerprint(target),
                faults::mix(config.max_nodes as u64, config.seed),
            );
            if faults::fail_point_keyed("qsearch.budget", key) {
                return Ok(finish(best, nodes_evaluated, false));
            }
        }

        let width = config.frontier_width.max(1);
        'outer: loop {
            // Claim: pop up to `width` expandable nodes. The heap's total
            // order (score, then creation sequence) makes this batch a
            // pure function of the search history.
            let mut claimed: Vec<Node> = Vec::new();
            while claimed.len() < width {
                match heap.pop() {
                    Some(node) if node.distance < config.distance_threshold => {
                        return Ok(finish(node, nodes_evaluated, true));
                    }
                    Some(node) if node.template.cnot_count() >= config.max_cnots => continue,
                    Some(node) => claimed.push(node),
                    None => break,
                }
            }
            if claimed.is_empty() || nodes_evaluated >= config.max_nodes {
                break;
            }
            // Compute: every child of every claimed node, as one batch on
            // the crew.
            let mut jobs = Vec::with_capacity(claimed.len() * pairs.len());
            for node in &claimed {
                for &(c, t) in &pairs {
                    let mut templ = (*node.template).clone();
                    templ.push_cell(c, t);
                    jobs.push(EvalJob {
                        template: templ,
                        seq: next_seq,
                    });
                    next_seq += 1;
                }
            }
            // Cooperative cancellation: charge the whole batch (a pure
            // function of the claim, so identical at any worker count)
            // before computing it. Budget exhaustion ends the search like
            // a max_nodes blow-through; a raised flag or blown deadline
            // aborts typed.
            match cancel.spend_qsearch_nodes(jobs.len() as u64) {
                Ok(true) => {}
                Ok(false) => break,
                Err(reason) => return Err(SynthError::Canceled(reason)),
            }
            let outs = crew.dispatch(jobs);
            // Replay: merge results serially, in claim order — the search
            // state evolves exactly as if everything ran on one thread.
            for out in outs {
                let child = make_node(out);
                nodes_evaluated += 1;
                if child.distance < best.distance - 1e-12 {
                    best = child.share();
                    since_improvement = 0;
                } else {
                    since_improvement += 1;
                }
                if child.distance < config.distance_threshold {
                    return Ok(finish(child, nodes_evaluated, true));
                }
                heap.push(child);
                if nodes_evaluated >= config.max_nodes {
                    break 'outer;
                }
            }
            // LEAP: commit the best prefix when stuck.
            if config.leap_patience > 0 && since_improvement >= config.leap_patience {
                epoc_rt::telemetry::counter_add("qsearch.leap_restarts", 1);
                heap.clear();
                let mut restart = best.share();
                restart.score = best.distance; // reset score so it expands first
                restart.seq = next_seq;
                next_seq += 1;
                heap.push(restart);
                since_improvement = 0;
            }
        }
        Ok(finish(best, nodes_evaluated, false))
    })
}

fn finish(node: Node, nodes_evaluated: usize, converged: bool) -> SynthResult {
    record_search_telemetry(nodes_evaluated);
    let circuit = node.template.to_circuit(&node.params);
    SynthResult {
        cnots: circuit.count_gates(|g| matches!(g, Gate::CX)),
        distance: node.distance,
        nodes_evaluated,
        converged,
        circuit,
    }
}

/// Per-call node accounting, shared by every exit path of [`synthesize`].
fn record_search_telemetry(nodes_evaluated: usize) {
    epoc_rt::telemetry::counter_add("qsearch.nodes", nodes_evaluated as u64);
    epoc_rt::telemetry::histogram_record("qsearch.nodes_per_call", nodes_evaluated as u64);
}

/// For 1-qubit targets whose optimum collapsed to identity-skip: make sure
/// a non-identity target still emits its VUG.
fn ensure_nonempty_1q(circuit: Circuit, target: &Matrix) -> Circuit {
    if !circuit.is_empty() {
        return circuit;
    }
    if epoc_linalg::phase_invariant_distance(target, &Matrix::identity(2)) < 1e-7 {
        return circuit; // genuinely the identity
    }
    let mut c = Circuit::new(1);
    c.push(Gate::unitary("vug", target.clone()), &[0]);
    c
}

/// Synthesizes a circuit block's unitary, falling back to the block's own
/// gate list (lowered to VUG/CNOT form) when search does not converge —
/// synthesis is then guaranteed never to *hurt*.
///
/// # Errors
///
/// Returns [`SynthError`] on malformed targets or when the analytic
/// fallback lowering itself fails.
pub fn synthesize_or_fallback(
    target: &Matrix,
    original: &Circuit,
    config: &SynthConfig,
) -> Result<SynthResult, SynthError> {
    let r = synthesize(target, config)?;
    if r.converged {
        return Ok(r);
    }
    let fallback = lower_to_vug_form(original)?;
    Ok(SynthResult {
        distance: 0.0,
        cnots: fallback.count_gates(|g| matches!(g, Gate::CX)),
        nodes_evaluated: r.nodes_evaluated,
        converged: true,
        circuit: fallback,
    })
}

/// Rewrites a circuit into VUG/CNOT form without numerical search: gates
/// are lowered analytically to `{H, RZ, CX, CZ}` (reusing the verified
/// lowerings of `epoc-zx`), `CZ` becomes `H·CX·H` on the target, and runs
/// of single-qubit gates on a wire collapse into one opaque VUG.
///
/// # Errors
///
/// Returns [`SynthError::OpaqueBlock`] if the circuit contains opaque
/// unitary blocks wider than one qubit (1-qubit VUGs pass through
/// unchanged), and [`SynthError::Lowering`] if the analytic lowering
/// fails.
pub fn lower_to_vug_form(circuit: &Circuit) -> Result<Circuit, SynthError> {
    // Split out existing opaque blocks so `lower_for_zx` never sees them.
    let mut elementary = Circuit::new(circuit.n_qubits());
    for op in circuit.ops() {
        match &op.gate {
            Gate::Unitary { matrix, .. } => {
                if matrix.rows() != 2 {
                    return Err(SynthError::OpaqueBlock { dim: matrix.rows() });
                }
                // Re-express through its own elementary decomposition so
                // the merging pass below can fuse it with neighbors.
                epoc_circuit::append_single_qubit_unitary(
                    &mut elementary,
                    matrix,
                    op.qubits[0],
                );
            }
            _ => {
                elementary.push_op(op.clone());
            }
        }
    }
    let lowered = epoc_zx::lower_for_zx(&elementary)
        .map_err(|e| SynthError::Lowering(e.to_string()))?;
    // Accumulate per-wire single-qubit products, flushing as VUGs at
    // two-qubit boundaries.
    let n = lowered.n_qubits();
    let mut pending: Vec<Option<Matrix>> = vec![None; n];
    let mut out = Circuit::new(n);
    let flush = |out: &mut Circuit, pending: &mut Vec<Option<Matrix>>, q: usize| {
        if let Some(u) = pending[q].take() {
            if let Some(gate) = crate::vug_gate(&u) {
                out.push(gate, &[q]);
            }
        }
    };
    let absorb = |pending: &mut Vec<Option<Matrix>>, q: usize, g: &Matrix| {
        let cur = pending[q].take().unwrap_or_else(|| Matrix::identity(2));
        pending[q] = Some(g.matmul(&cur));
    };
    for op in lowered.ops() {
        match &op.gate {
            Gate::H => absorb(&mut pending, op.qubits[0], &Gate::H.unitary_matrix()),
            Gate::RZ(t) => absorb(&mut pending, op.qubits[0], &Gate::RZ(*t).unitary_matrix()),
            Gate::CX => {
                flush(&mut out, &mut pending, op.qubits[0]);
                flush(&mut out, &mut pending, op.qubits[1]);
                out.push(Gate::CX, &op.qubits);
            }
            Gate::CZ => {
                // CZ = (I⊗H)·CX·(I⊗H)
                let h = Gate::H.unitary_matrix();
                absorb(&mut pending, op.qubits[1], &h);
                flush(&mut out, &mut pending, op.qubits[0]);
                flush(&mut out, &mut pending, op.qubits[1]);
                out.push(Gate::CX, &op.qubits);
                absorb(&mut pending, op.qubits[1], &h);
            }
            g => {
                return Err(SynthError::Lowering(format!(
                    "lower_for_zx produced unexpected gate {g}"
                )))
            }
        }
    }
    for q in 0..n {
        flush(&mut out, &mut pending, q);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::{circuits_equivalent, Circuit};
    use epoc_linalg::{phase_invariant_distance, random_unitary};
    use epoc_rt::rng::StdRng;

    fn verify(result: &SynthResult, target: &Matrix, tol: f64) {
        let u = result.circuit.unitary();
        let d = phase_invariant_distance(&u, target);
        assert!(d < tol, "result distance {d} (reported {})", result.distance);
    }

    #[test]
    fn synthesize_single_qubit() {
        let mut rng = StdRng::seed_from_u64(11);
        let target = random_unitary(2, &mut rng);
        let r = synthesize(&target, &SynthConfig::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.cnots, 0);
        verify(&r, &target, 1e-4);
    }

    #[test]
    fn synthesize_identity_two_qubit() {
        let target = Matrix::identity(4);
        let r = synthesize(&target, &SynthConfig::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.cnots, 0);
        assert!(r.circuit.is_empty() || r.distance < 1e-5);
    }

    #[test]
    fn synthesize_cx_needs_one_cnot() {
        let r = synthesize(&Gate::CX.unitary_matrix(), &SynthConfig::default()).unwrap();
        assert!(r.converged, "distance {}", r.distance);
        assert!(r.cnots <= 1, "used {} cnots", r.cnots);
        verify(&r, &Gate::CX.unitary_matrix(), 1e-4);
    }

    #[test]
    fn synthesize_swap_needs_three_cnots() {
        let r = synthesize(&Gate::Swap.unitary_matrix(), &SynthConfig::default()).unwrap();
        assert!(r.converged, "distance {}", r.distance);
        assert!(r.cnots <= 3, "used {} cnots", r.cnots);
        verify(&r, &Gate::Swap.unitary_matrix(), 1e-4);
    }

    #[test]
    fn synthesize_random_two_qubit() {
        let mut rng = StdRng::seed_from_u64(21);
        for i in 0..3 {
            let target = random_unitary(4, &mut rng);
            let r = synthesize(
                &target,
                &SynthConfig {
                    seed: 100 + i,
                    ..SynthConfig::default()
                },
            )
            .unwrap();
            assert!(r.converged, "case {i}: distance {}", r.distance);
            // KAK bound: any 2-qubit unitary needs ≤ 3 CNOTs.
            assert!(r.cnots <= 4, "case {i}: used {} cnots", r.cnots);
            verify(&r, &target, 1e-4);
        }
    }

    #[test]
    fn synthesize_two_qubit_circuit_block() {
        // A realistic block: H·CX·T·CX ladder.
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0])
            .push(Gate::CX, &[0, 1])
            .push(Gate::T, &[1])
            .push(Gate::CX, &[0, 1])
            .push(Gate::S, &[0]);
        let target = c.unitary();
        let r = synthesize(&target, &SynthConfig::default()).unwrap();
        assert!(r.converged, "distance {}", r.distance);
        verify(&r, &target, 1e-4);
        assert!(
            circuits_equivalent(&c, &r.circuit, 1e-4),
            "synthesized block differs"
        );
    }

    #[test]
    fn fallback_when_budget_tiny() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]).push(Gate::T, &[1]);
        let target = c.unitary();
        let cfg = SynthConfig {
            max_nodes: 1,
            max_cnots: 0,
            ..SynthConfig::default()
        };
        let r = synthesize_or_fallback(&target, &c, &cfg).unwrap();
        assert!(r.converged);
        assert!(circuits_equivalent(&c, &r.circuit, 1e-6));
    }

    #[test]
    fn lower_to_vug_form_preserves() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0])
            .push(Gate::CZ, &[0, 1])
            .push(Gate::RZZ(0.4), &[1, 2])
            .push(Gate::T, &[2]);
        let lowered = lower_to_vug_form(&c).unwrap();
        assert!(circuits_equivalent(&c, &lowered, 1e-4));
        for op in lowered.ops() {
            assert!(matches!(op.gate, Gate::Unitary { .. } | Gate::CX | Gate::RZ(_)));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let target = Gate::CZ.unitary_matrix();
        let a = synthesize(&target, &SynthConfig::default()).unwrap();
        let b = synthesize(&target, &SynthConfig::default()).unwrap();
        assert_eq!(a.circuit, b.circuit);
    }

    #[test]
    fn worker_count_does_not_change_search() {
        // The claim/compute/replay scheme makes the whole trajectory a
        // function of the configuration alone: node counts, structures,
        // and distances must be identical at any worker count.
        let mut rng = StdRng::seed_from_u64(77);
        let target = random_unitary(4, &mut rng);
        let run = |workers: usize| {
            synthesize(
                &target,
                &SynthConfig {
                    workers,
                    ..SynthConfig::default()
                },
            )
            .unwrap()
        };
        let base = run(1);
        for workers in [2, 4] {
            let r = run(workers);
            assert_eq!(r.circuit, base.circuit, "workers = {workers}");
            assert_eq!(
                r.distance.to_bits(),
                base.distance.to_bits(),
                "workers = {workers}"
            );
            assert_eq!(r.nodes_evaluated, base.nodes_evaluated, "workers = {workers}");
            assert_eq!(r.cnots, base.cnots, "workers = {workers}");
            assert_eq!(r.converged, base.converged, "workers = {workers}");
        }
    }
}

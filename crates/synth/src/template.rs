//! Parameterized circuit templates for numerical synthesis.
//!
//! A [`Template`] is QSearch's candidate structure: a layer of
//! *variable unitary gates* (VUGs — general single-qubit unitaries
//! parameterized as `RZ·RY·RZ`) on every wire, followed by repeated
//! `CNOT + VUG·VUG` cells. Instantiation optimizes all rotation angles to
//! minimize the phase-invariant distance to a target unitary, using
//! analytic gradients (each parameter is a rotation angle, so
//! `∂G/∂θ = (−i P/2)·G` for the generator `P`).
//!
//! Evaluation goes through a compiled [`EvalPlan`]: every elementary gate
//! is a 1-qubit rotation or a CNOT, so instead of embedding it to `d×d`
//! and running a dense matmul (`O(d³)` per gate, with fresh allocations
//! every Adam step), the plan applies each gate as a sparse row/column
//! mix in `O(d²)`, and the gradient of every angle reduces to an `O(d²)`
//! trace contraction against preassembled prefix/suffix products. All
//! workspace matrices live in an [`EvalScratch`] reused across the whole
//! Adam run (every iteration of every restart).

use epoc_circuit::{Circuit, Gate};
use epoc_linalg::{c64, Complex64, Matrix};
use epoc_rt::rng::Rng;

/// Rotation axis of a template parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Z rotation.
    Z,
    /// Y rotation.
    Y,
}

/// One structural element of a template.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// A VUG on `qubit`, consuming 3 parameters starting at `param`.
    Vug {
        /// Wire index.
        qubit: usize,
        /// Offset of the first of its three angles.
        param: usize,
    },
    /// A fixed CNOT.
    Cnot {
        /// Control wire.
        control: usize,
        /// Target wire.
        target: usize,
    },
}

/// A QSearch-style parameterized template over `n` wires.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    n_qubits: usize,
    segments: Vec<Segment>,
    n_params: usize,
}

/// One compiled elementary op. Qubit positions are pre-resolved to basis
/// index bit masks (`embed` is big-endian: qubit `q` owns bit `n-1-q`).
///
/// A whole VUG compiles to a **single** op: its `RZ(a)·RY(b)·RZ(c)` product
/// is fused into one 2×2 at evaluation time, so the `d×d` sweeps touch each
/// VUG once instead of three times, and all three angle gradients read off
/// the same prefix/suffix pair through different 2×2 generator products.
#[derive(Debug, Clone, Copy)]
enum PlanOp {
    /// An embedded VUG: mixes index pairs differing in `mask` with the
    /// fused `RZ·RY·RZ` product; consumes 3 parameters starting at `param`.
    Vug { mask: usize, param: usize },
    /// An embedded CNOT: a permutation (swap `tmask` pairs where `cmask`
    /// is set).
    Cnot { cmask: usize, tmask: usize },
}

/// The compiled evaluation plan of a template: structure only, no
/// parameter values and no embedded matrices.
#[derive(Debug)]
struct EvalPlan {
    dim: usize,
    ops: Vec<PlanOp>,
}

/// Reusable workspace for plan evaluation: the daggered target and one
/// `d×d` buffer per chain level, allocated once per `instantiate` call.
struct EvalScratch {
    /// `target†`.
    adag: Matrix,
    /// `as_chain[i] = target† · G_{k-1}···G_i` (suffix products folded
    /// into the target from the left; `as_chain[k] = target†`).
    as_chain: Vec<Matrix>,
    /// Running prefix `G_{i-1}···G_0` during the gradient sweep, stored
    /// **transposed** so the trace contraction reads it row-contiguously.
    prefix_t: Matrix,
    /// Per-op fused VUG matrices at the current parameters, computed once
    /// per evaluation (the backward sweep, gradient read-off, and forward
    /// sweep all reuse them — three `sin_cos` per VUG total).
    vmats: Vec<VugMats>,
}

/// The 2×2 products one VUG contributes to an evaluation: the fused gate
/// `u = RZ(a)·RY(b)·RZ(c)` and the three generator insertions whose traces
/// give the angle gradients (`∂U/∂θ = (−i/2)·embed(q_θ)` against the same
/// prefix/suffix pair).
#[derive(Clone, Copy, Default)]
struct VugMats {
    /// `RZ(a)·RY(b)·RZ(c)`.
    u: [Complex64; 4],
    /// `P_z·u` (gradient of `a`).
    qa: [Complex64; 4],
    /// `RZ(a)·P_y·RY(b)·RZ(c)` (gradient of `b`).
    qb: [Complex64; 4],
    /// `RZ(a)·RY(b)·P_z·RZ(c)` (gradient of `c`).
    qc: [Complex64; 4],
}

impl EvalScratch {
    fn new(target: &Matrix, plan: &EvalPlan) -> Self {
        Self {
            adag: target.dagger(),
            as_chain: vec![Matrix::zeros(plan.dim, plan.dim); plan.ops.len() + 1],
            prefix_t: Matrix::zeros(plan.dim, plan.dim),
            vmats: vec![VugMats::default(); plan.ops.len()],
        }
    }
}

/// `R(θ)` as a row-major 2×2 (one `sin_cos` per call).
fn rot2(axis: Axis, theta: f64) -> [Complex64; 4] {
    let (s, c) = (theta / 2.0).sin_cos();
    match axis {
        Axis::Z => [c64(c, -s), Complex64::ZERO, Complex64::ZERO, c64(c, s)],
        Axis::Y => [c64(c, 0.0), c64(-s, 0.0), c64(s, 0.0), c64(c, 0.0)],
    }
}

/// Row-major 2×2 complex product `a·b`.
fn mm2(a: &[Complex64; 4], b: &[Complex64; 4]) -> [Complex64; 4] {
    [
        a[0] * b[0] + a[1] * b[2],
        a[0] * b[1] + a[1] * b[3],
        a[2] * b[0] + a[3] * b[2],
        a[2] * b[1] + a[3] * b[3],
    ]
}

/// Builds one VUG's fused matrices at angles `(a, b, c)`:
/// `u = RZ(a)·RY(b)·RZ(c)` plus the three generator insertions. Inserting
/// the axis generator at each rotation's own position keeps every angle
/// gradient exact while the `d×d` sweeps only ever see `u`.
fn vug_mats(a: f64, b: f64, c: f64) -> VugMats {
    let rz_a = rot2(Axis::Z, a);
    let ry_b = rot2(Axis::Y, b);
    let rz_c = rot2(Axis::Z, c);
    let w = mm2(&ry_b, &rz_c);
    let u = mm2(&rz_a, &w);
    VugMats {
        u,
        qa: gen_rot2(Axis::Z, &u),
        qb: mm2(&rz_a, &gen_rot2(Axis::Y, &w)),
        qc: mm2(&rz_a, &mm2(&ry_b, &gen_rot2(Axis::Z, &rz_c))),
    }
}

/// `P·M` for the axis generator `P` (so `∂R/∂θ = (−i/2)·P·R` when `M`
/// starts with the rotation `R(θ)` of that axis).
fn gen_rot2(axis: Axis, r: &[Complex64; 4]) -> [Complex64; 4] {
    match axis {
        // diag(1,−1)·R
        Axis::Z => [r[0], r[1], -r[2], -r[3]],
        // [[0,−i],[i,0]]·R
        Axis::Y => [
            r[2] * c64(0.0, -1.0),
            r[3] * c64(0.0, -1.0),
            r[0] * c64(0.0, 1.0),
            r[1] * c64(0.0, 1.0),
        ],
    }
}

/// `m ← embed(g)·m`: for every row pair `(r, r|mask)` replace the rows by
/// their `g`-mix. Row pairs are disjoint, so the update is in place; the
/// whole-row mix runs on the dispatched [`epoc_linalg::mix_pair`] kernel.
fn mix_rows(m: &mut Matrix, mask: usize, g: &[Complex64; 4]) {
    let rows = m.rows();
    let cols = m.cols();
    let data = m.as_mut_slice();
    // Rows with `r & mask == 0` form runs of `mask` consecutive rows paired
    // with the following `mask` rows, so each run mixes in a single kernel
    // call over `mask·cols` contiguous elements (the mix is elementwise, so
    // batching calls cannot change any output bit).
    let run = mask * cols;
    let mut base = 0;
    while base < rows * cols {
        let (lo, hi) = data[base..base + 2 * run].split_at_mut(run);
        epoc_linalg::mix_pair(lo, hi, g[0], g[1], g[2], g[3]);
        base += 2 * run;
    }
}

/// `m ← m·embed(g)`: the column-pair analog of [`mix_rows`].
///
/// `mask` is a single bit, so within each row the column pairs form
/// contiguous runs: `[base..base+mask]` pairs with `[base+mask..base+2·mask]`
/// for `base` stepping by `2·mask`. That turns the strided pair walk into
/// slice-level kernel calls ([`epoc_linalg::mix_adjacent`] when the pairs
/// are neighbors, [`epoc_linalg::mix_pair`] on the run halves otherwise).
fn mix_cols(m: &mut Matrix, mask: usize, g: &[Complex64; 4]) {
    let cols = m.cols();
    if mask == 1 {
        // Adjacent pairs repeat identically in every row, so the whole
        // flattened matrix is one kernel call.
        epoc_linalg::mix_adjacent(m.as_mut_slice(), g[0], g[2], g[1], g[3]);
        return;
    }
    for row in m.as_mut_slice().chunks_exact_mut(cols) {
        let mut base = 0;
        while base < cols {
            let (a, b) = row[base..base + 2 * mask].split_at_mut(mask);
            epoc_linalg::mix_pair(a, b, g[0], g[2], g[1], g[3]);
            base += 2 * mask;
        }
    }
}

/// `m ← CNOT·m` (row permutation).
fn cnot_left(m: &mut Matrix, cmask: usize, tmask: usize) {
    let rows = m.rows();
    let cols = m.cols();
    let data = m.as_mut_slice();
    for r0 in 0..rows {
        if r0 & cmask != 0 && r0 & tmask == 0 {
            let r1 = r0 | tmask;
            let (lo, hi) = data.split_at_mut(r1 * cols);
            lo[r0 * cols..r0 * cols + cols].swap_with_slice(&mut hi[..cols]);
        }
    }
}

/// `m ← m·CNOT` (column permutation).
fn cnot_right(m: &mut Matrix, cmask: usize, tmask: usize) {
    let cols = m.cols();
    for row in m.as_mut_slice().chunks_exact_mut(cols) {
        for c0 in 0..cols {
            if c0 & cmask != 0 && c0 & tmask == 0 {
                row.swap(c0, c0 | tmask);
            }
        }
    }
}

/// `m ← op·m`.
fn apply_left(m: &mut Matrix, op: &PlanOp, params: &[f64]) {
    match *op {
        PlanOp::Vug { mask, param } => mix_rows(
            m,
            mask,
            &vug_mats(params[param], params[param + 1], params[param + 2]).u,
        ),
        PlanOp::Cnot { cmask, tmask } => cnot_left(m, cmask, tmask),
    }
}

/// `Tr(prefix · as_next · embed(q))` without forming any product matrix:
/// the right factor only mixes column pairs of `as_next`, so the trace is
/// a direct `O(d²)` contraction. Takes the prefix **transposed** so both
/// operands stream row-contiguously (`prefixᵀ[b,a] = prefix[a,b]`); the
/// contraction itself runs on the dispatched
/// [`epoc_linalg::mixed_pair_trace`] kernel.
fn mixed_trace(prefix_t: &Matrix, as_next: &Matrix, mask: usize, q: &[Complex64; 4]) -> Complex64 {
    let dim = as_next.rows();
    epoc_linalg::mixed_pair_trace(prefix_t.as_slice(), as_next.as_slice(), dim, mask, q)
}

fn set_identity(m: &mut Matrix) {
    let dim = m.rows();
    let data = m.as_mut_slice();
    data.fill(Complex64::ZERO);
    for i in 0..dim {
        data[i * dim + i] = Complex64::ONE;
    }
}

impl EvalPlan {
    /// Phase-invariant cost and gradient at `params`, written into `grad`.
    ///
    /// With ops `G_0..G_{k-1}` (so `U = G_{k-1}···G_0`) and `A = target†`:
    /// a backward sweep stores `AS_i = A·G_{k-1}···G_i`, then a forward
    /// sweep maintains `prefix_i = G_{i-1}···G_0` and reads off each
    /// angle's derivative from
    /// `df_i = (−i/2)·Tr(prefix_i · AS_{i+1} · embed(P·R(θ_i)))`.
    fn cost_and_grad(&self, params: &[f64], scratch: &mut EvalScratch, grad: &mut [f64]) -> f64 {
        let k = self.ops.len();
        let dim = self.dim as f64;
        // Fused VUG matrices once per evaluation; both sweeps reuse them.
        scratch.vmats.resize(k, VugMats::default());
        for (vm, op) in scratch.vmats.iter_mut().zip(&self.ops) {
            if let PlanOp::Vug { param, .. } = *op {
                *vm = vug_mats(params[param], params[param + 1], params[param + 2]);
            }
        }
        scratch.as_chain[k].copy_from(&scratch.adag);
        for i in (0..k).rev() {
            let (lo, hi) = scratch.as_chain.split_at_mut(i + 1);
            lo[i].copy_from(&hi[0]);
            match self.ops[i] {
                PlanOp::Vug { mask, .. } => mix_cols(&mut lo[i], mask, &scratch.vmats[i].u),
                PlanOp::Cnot { cmask, tmask } => cnot_right(&mut lo[i], cmask, tmask),
            }
        }
        // f = Tr(A·U) = Tr(AS_0)
        let f = scratch.as_chain[0].trace();
        let fabs = f.abs().max(1e-300);
        let cost = 1.0 - fabs / dim;

        grad.fill(0.0);
        set_identity(&mut scratch.prefix_t);
        for (i, op) in self.ops.iter().enumerate() {
            match *op {
                PlanOp::Vug { mask, param } => {
                    // All three angle gradients contract the same
                    // prefix/suffix pair against different 2×2 inserts.
                    let vm = scratch.vmats[i];
                    for (off, q) in [(0usize, &vm.qa), (1, &vm.qb), (2, &vm.qc)] {
                        let df =
                            mixed_trace(&scratch.prefix_t, &scratch.as_chain[i + 1], mask, q)
                                * c64(0.0, -0.5);
                        // d|f|/dθ = Re(conj(f)·df)/|f|
                        grad[param + off] -= (f.conj() * df).re / fabs / dim;
                    }
                    // prefix ← u·prefix  ⇔  prefixᵀ ← prefixᵀ·uᵀ
                    let u = &vm.u;
                    mix_cols(&mut scratch.prefix_t, mask, &[u[0], u[2], u[1], u[3]]);
                }
                // CNOT is a symmetric permutation, so CNOTᵀ = CNOT.
                PlanOp::Cnot { cmask, tmask } => cnot_right(&mut scratch.prefix_t, cmask, tmask),
            }
        }
        cost
    }
}

impl Template {
    /// The root template: one VUG per wire, no CNOTs.
    pub fn initial(n_qubits: usize) -> Self {
        assert!(n_qubits >= 1, "template needs at least one wire");
        let mut t = Self {
            n_qubits,
            segments: Vec::new(),
            n_params: 0,
        };
        for q in 0..n_qubits {
            t.push_vug(q);
        }
        t
    }

    /// Number of wires.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of free parameters.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Number of CNOT cells.
    pub fn cnot_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Cnot { .. }))
            .count()
    }

    /// The structural segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Appends a VUG on `qubit`.
    pub fn push_vug(&mut self, qubit: usize) {
        assert!(qubit < self.n_qubits, "qubit out of range");
        self.segments.push(Segment::Vug {
            qubit,
            param: self.n_params,
        });
        self.n_params += 3;
    }

    /// Appends a QSearch cell: CNOT(control→target) followed by a VUG on
    /// each of the two wires.
    pub fn push_cell(&mut self, control: usize, target: usize) {
        assert!(control < self.n_qubits && target < self.n_qubits && control != target);
        self.segments.push(Segment::Cnot { control, target });
        self.push_vug(control);
        self.push_vug(target);
    }

    /// Compiles the segment list into masked elementary ops.
    fn plan(&self) -> EvalPlan {
        let n = self.n_qubits;
        let bit = |q: usize| 1usize << (n - 1 - q);
        let mut ops = Vec::with_capacity(self.segments.len());
        for seg in &self.segments {
            match *seg {
                Segment::Vug { qubit, param } => {
                    ops.push(PlanOp::Vug {
                        mask: bit(qubit),
                        param,
                    });
                }
                Segment::Cnot { control, target } => {
                    ops.push(PlanOp::Cnot {
                        cmask: bit(control),
                        tmask: bit(target),
                    });
                }
            }
        }
        EvalPlan {
            dim: 1 << n,
            ops,
        }
    }

    /// Evaluates the template unitary at `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != n_params`.
    pub fn unitary(&self, params: &[f64]) -> Matrix {
        assert_eq!(params.len(), self.n_params, "parameter count mismatch");
        let plan = self.plan();
        let mut u = Matrix::identity(plan.dim);
        for op in &plan.ops {
            apply_left(&mut u, op, params);
        }
        u
    }

    /// Phase-invariant cost `1 − |Tr(target†·U(θ))| / d` and its gradient.
    ///
    /// # Panics
    ///
    /// Panics on parameter count mismatch.
    pub fn cost_and_grad(&self, target: &Matrix, params: &[f64]) -> (f64, Vec<f64>) {
        assert_eq!(params.len(), self.n_params, "parameter count mismatch");
        let plan = self.plan();
        let mut scratch = EvalScratch::new(target, &plan);
        let mut grad = vec![0.0f64; self.n_params];
        let cost = plan.cost_and_grad(params, &mut scratch, &mut grad);
        (cost, grad)
    }

    /// Phase-invariant distance `√max(cost, 0)` at `params`.
    pub fn distance(&self, target: &Matrix, params: &[f64]) -> f64 {
        let u = self.unitary(params);
        epoc_linalg::phase_invariant_distance(target, &u)
    }

    /// Optimizes the parameters toward `target` with Adam from a random
    /// start, returning `(params, distance)`.
    pub fn instantiate(
        &self,
        target: &Matrix,
        rng: &mut impl Rng,
        opts: &InstantiateOptions,
    ) -> (Vec<f64>, f64) {
        let plan = self.plan();
        let mut scratch = EvalScratch::new(target, &plan);
        let mut g = vec![0.0f64; self.n_params];
        let mut best_params: Vec<f64> = Vec::new();
        let mut best_cost = f64::INFINITY;
        for _restart in 0..opts.restarts.max(1) {
            epoc_rt::telemetry::counter_add("qsearch.adam_restarts", 1);
            let mut params: Vec<f64> = (0..self.n_params)
                .map(|_| rng.gen_f64() * std::f64::consts::TAU)
                .collect();
            let mut m = vec![0.0f64; self.n_params];
            let mut v = vec![0.0f64; self.n_params];
            let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
            let mut cost = f64::INFINITY;
            for step in 1..=opts.max_iters {
                let c = plan.cost_and_grad(&params, &mut scratch, &mut g);
                cost = c;
                if c < opts.cost_threshold {
                    break;
                }
                let lr = opts.learning_rate / (1.0 + 0.002 * step as f64);
                // Bias corrections depend only on the step, not the
                // parameter — hoist them out of the update loop.
                let bc1 = 1.0 - b1.powi(step as i32);
                let bc2 = 1.0 - b2.powi(step as i32);
                for j in 0..self.n_params {
                    m[j] = b1 * m[j] + (1.0 - b1) * g[j];
                    v[j] = b2 * v[j] + (1.0 - b2) * g[j] * g[j];
                    let mh = m[j] / bc1;
                    let vh = v[j] / bc2;
                    params[j] -= lr * mh / (vh.sqrt() + eps);
                }
            }
            if cost < best_cost {
                best_cost = cost;
                best_params = params;
                if best_cost < opts.cost_threshold {
                    break;
                }
            }
        }
        let dist = best_cost.max(0.0).sqrt();
        (best_params, dist)
    }

    /// Converts the instantiated template to a circuit of opaque 1-qubit
    /// VUG gates and CNOTs.
    ///
    /// # Panics
    ///
    /// Panics on parameter count mismatch.
    pub fn to_circuit(&self, params: &[f64]) -> Circuit {
        assert_eq!(params.len(), self.n_params, "parameter count mismatch");
        let mut c = Circuit::new(self.n_qubits);
        for seg in &self.segments {
            match *seg {
                Segment::Vug { qubit, param } => {
                    let u = Gate::RZ(params[param])
                        .unitary_matrix()
                        .matmul(&Gate::RY(params[param + 1]).unitary_matrix())
                        .matmul(&Gate::RZ(params[param + 2]).unitary_matrix());
                    if let Some(gate) = crate::vug_gate(&u) {
                        c.push(gate, &[qubit]);
                    }
                }
                Segment::Cnot { control, target } => {
                    c.push(Gate::CX, &[control, target]);
                }
            }
        }
        c
    }
}

/// Options controlling numerical instantiation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstantiateOptions {
    /// Adam iterations per restart.
    pub max_iters: usize,
    /// Random restarts.
    pub restarts: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Stop when the cost (distance²) drops below this.
    pub cost_threshold: f64,
}

impl Default for InstantiateOptions {
    fn default() -> Self {
        Self {
            max_iters: 400,
            restarts: 3,
            learning_rate: 0.2,
            cost_threshold: 1e-12,
        }
    }
}

/// Keep `Complex64` referenced for doc purposes.
#[doc(hidden)]
pub type _C = Complex64;

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_linalg::random_unitary;
    use epoc_rt::rng::StdRng;

    /// Dense reference evaluator: embeds every elementary gate to `d×d`
    /// and multiplies — the pre-plan implementation, kept as the oracle
    /// for the sparse row/column-mix path.
    fn unitary_reference(t: &Template, params: &[f64]) -> Matrix {
        let n = t.n_qubits();
        let rot = |axis: Axis, theta: f64| match axis {
            Axis::Z => Gate::RZ(theta).unitary_matrix(),
            Axis::Y => Gate::RY(theta).unitary_matrix(),
        };
        let mut u = Matrix::identity(1 << n);
        for seg in t.segments() {
            match *seg {
                Segment::Vug { qubit, param } => {
                    for (axis, p) in [(Axis::Z, param + 2), (Axis::Y, param + 1), (Axis::Z, param)]
                    {
                        u = rot(axis, params[p]).embed(&[qubit], n).matmul(&u);
                    }
                }
                Segment::Cnot { control, target } => {
                    u = Gate::CX
                        .unitary_matrix()
                        .embed(&[control, target], n)
                        .matmul(&u);
                }
            }
        }
        u
    }

    fn random_template(g: &mut epoc_rt::check::Gen) -> Template {
        let n = g.usize_in(1, 4);
        let mut t = Template::initial(n);
        if n >= 2 {
            for _ in 0..g.usize_in(0, 4) {
                let c = g.usize_in(0, n);
                let mut tq = g.usize_in(0, n);
                if tq == c {
                    tq = (tq + 1) % n;
                }
                t.push_cell(c, tq);
            }
        }
        t
    }

    #[test]
    fn prop_plan_unitary_matches_dense_reference() {
        epoc_rt::check::property("synth plan unitary == dense embed/matmul reference")
            .cases(30)
            .run(|g| {
                let t = random_template(g);
                let params: Vec<f64> = (0..t.n_params())
                    .map(|_| g.f64_in(-7.0, 7.0))
                    .collect();
                let fast = t.unitary(&params);
                let slow = unitary_reference(&t, &params);
                assert!(
                    fast.approx_eq(&slow, 1e-12),
                    "plan and reference unitaries diverge"
                );
            });
    }

    #[test]
    fn prop_plan_cost_matches_dense_reference() {
        epoc_rt::check::property("synth plan cost == dense reference cost")
            .cases(20)
            .run(|g| {
                let t = random_template(g);
                let dim = 1usize << t.n_qubits();
                let mut rng = StdRng::seed_from_u64(g.usize_in(0, 1 << 30) as u64);
                let target = random_unitary(dim, &mut rng);
                let params: Vec<f64> = (0..t.n_params())
                    .map(|_| g.f64_in(-7.0, 7.0))
                    .collect();
                let (cost, _) = t.cost_and_grad(&target, &params);
                let f = target.dagger().matmul(&unitary_reference(&t, &params)).trace();
                let expect = 1.0 - f.abs() / dim as f64;
                assert!(
                    (cost - expect).abs() < 1e-12,
                    "plan cost {cost} vs reference {expect}"
                );
            });
    }

    #[test]
    fn initial_template_shape() {
        let t = Template::initial(2);
        assert_eq!(t.n_params(), 6);
        assert_eq!(t.cnot_count(), 0);
        let u = t.unitary(&[0.0; 6]);
        assert!(u.approx_eq(&Matrix::identity(4), 1e-12));
    }

    #[test]
    fn cell_adds_cnot_and_vugs() {
        let mut t = Template::initial(2);
        t.push_cell(0, 1);
        assert_eq!(t.cnot_count(), 1);
        assert_eq!(t.n_params(), 12);
    }

    #[test]
    fn unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = Template::initial(3);
        t.push_cell(0, 1);
        t.push_cell(1, 2);
        let params: Vec<f64> = (0..t.n_params()).map(|_| rng.gen_f64() * 6.0).collect();
        assert!(t.unitary(&params).is_unitary(1e-9));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let target = random_unitary(4, &mut rng);
        let mut t = Template::initial(2);
        t.push_cell(0, 1);
        let params: Vec<f64> = (0..t.n_params()).map(|_| rng.gen_f64() * 6.0).collect();
        let (c0, grad) = t.cost_and_grad(&target, &params);
        let h = 1e-6;
        for j in 0..t.n_params() {
            let mut p = params.clone();
            p[j] += h;
            let (c1, _) = t.cost_and_grad(&target, &p);
            let fd = (c1 - c0) / h;
            assert!(
                (fd - grad[j]).abs() < 1e-4,
                "param {j}: fd {fd} vs analytic {}",
                grad[j]
            );
        }
    }

    #[test]
    fn gradient_matches_finite_difference_three_qubits() {
        // Exercises non-adjacent masks and reversed-direction CNOTs.
        let mut rng = StdRng::seed_from_u64(7);
        let target = random_unitary(8, &mut rng);
        let mut t = Template::initial(3);
        t.push_cell(2, 0);
        t.push_cell(1, 2);
        let params: Vec<f64> = (0..t.n_params()).map(|_| rng.gen_f64() * 6.0).collect();
        let (c0, grad) = t.cost_and_grad(&target, &params);
        let h = 1e-6;
        for j in 0..t.n_params() {
            let mut p = params.clone();
            p[j] += h;
            let (c1, _) = t.cost_and_grad(&target, &p);
            let fd = (c1 - c0) / h;
            assert!(
                (fd - grad[j]).abs() < 1e-4,
                "param {j}: fd {fd} vs analytic {}",
                grad[j]
            );
        }
    }

    #[test]
    fn instantiate_single_qubit_target() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let target = random_unitary(2, &mut rng);
            let t = Template::initial(1);
            let (params, dist) = t.instantiate(&target, &mut rng, &InstantiateOptions::default());
            assert!(dist < 1e-5, "distance {dist}");
            assert!(t.distance(&target, &params) < 1e-5);
        }
    }

    #[test]
    fn instantiate_cnot_target() {
        // CX itself needs one cell.
        let mut rng = StdRng::seed_from_u64(4);
        let target = Gate::CX.unitary_matrix();
        let mut t = Template::initial(2);
        t.push_cell(0, 1);
        let (_, dist) = t.instantiate(
            &target,
            &mut rng,
            &InstantiateOptions {
                restarts: 5,
                ..Default::default()
            },
        );
        assert!(dist < 1e-5, "distance {dist}");
    }

    #[test]
    fn to_circuit_matches_template_unitary() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = Template::initial(2);
        t.push_cell(0, 1);
        t.push_cell(1, 0);
        let params: Vec<f64> = (0..t.n_params()).map(|_| rng.gen_f64() * 6.0).collect();
        let c = t.to_circuit(&params);
        let d = epoc_linalg::phase_invariant_distance(&c.unitary(), &t.unitary(&params));
        assert!(d < 1e-7, "distance {d}");
        // Only VUGs and CNOTs appear.
        for op in c.ops() {
            assert!(matches!(op.gate, Gate::Unitary { .. } | Gate::CX | Gate::RZ(_)));
        }
    }

    #[test]
    fn to_circuit_skips_identity_vugs() {
        let t = Template::initial(2);
        let c = t.to_circuit(&[0.0; 6]);
        assert!(c.is_empty());
    }
}

//! Parameterized circuit templates for numerical synthesis.
//!
//! A [`Template`] is QSearch's candidate structure: a layer of
//! *variable unitary gates* (VUGs — general single-qubit unitaries
//! parameterized as `RZ·RY·RZ`) on every wire, followed by repeated
//! `CNOT + VUG·VUG` cells. Instantiation optimizes all rotation angles to
//! minimize the phase-invariant distance to a target unitary, using
//! analytic gradients (each parameter is a rotation angle, so
//! `∂G/∂θ = (−i P/2)·G` for the generator `P`).

use epoc_circuit::{Circuit, Gate};
use epoc_linalg::{c64, Complex64, Matrix};
use epoc_rt::rng::Rng;

/// Rotation axis of a template parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Z rotation.
    Z,
    /// Y rotation.
    Y,
}

impl Axis {
    fn rotation(self, theta: f64) -> Matrix {
        match self {
            Axis::Z => Gate::RZ(theta).unitary_matrix(),
            Axis::Y => Gate::RY(theta).unitary_matrix(),
        }
    }

    /// Generator P with ∂R/∂θ = (−i P / 2) · R(θ).
    fn generator(self) -> Matrix {
        match self {
            Axis::Z => Gate::Z.unitary_matrix(),
            Axis::Y => Gate::Y.unitary_matrix(),
        }
    }
}

/// One structural element of a template.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// A VUG on `qubit`, consuming 3 parameters starting at `param`.
    Vug {
        /// Wire index.
        qubit: usize,
        /// Offset of the first of its three angles.
        param: usize,
    },
    /// A fixed CNOT.
    Cnot {
        /// Control wire.
        control: usize,
        /// Target wire.
        target: usize,
    },
}

/// A QSearch-style parameterized template over `n` wires.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    n_qubits: usize,
    segments: Vec<Segment>,
    n_params: usize,
}

/// Flattened elementary op used during evaluation.
enum ElemOp {
    Fixed(Matrix),
    Rot { axis: Axis, qubit: usize, param: usize },
}

impl Template {
    /// The root template: one VUG per wire, no CNOTs.
    pub fn initial(n_qubits: usize) -> Self {
        assert!(n_qubits >= 1, "template needs at least one wire");
        let mut t = Self {
            n_qubits,
            segments: Vec::new(),
            n_params: 0,
        };
        for q in 0..n_qubits {
            t.push_vug(q);
        }
        t
    }

    /// Number of wires.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of free parameters.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Number of CNOT cells.
    pub fn cnot_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Cnot { .. }))
            .count()
    }

    /// The structural segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Appends a VUG on `qubit`.
    pub fn push_vug(&mut self, qubit: usize) {
        assert!(qubit < self.n_qubits, "qubit out of range");
        self.segments.push(Segment::Vug {
            qubit,
            param: self.n_params,
        });
        self.n_params += 3;
    }

    /// Appends a QSearch cell: CNOT(control→target) followed by a VUG on
    /// each of the two wires.
    pub fn push_cell(&mut self, control: usize, target: usize) {
        assert!(control < self.n_qubits && target < self.n_qubits && control != target);
        self.segments.push(Segment::Cnot { control, target });
        self.push_vug(control);
        self.push_vug(target);
    }

    fn elem_ops(&self) -> Vec<ElemOp> {
        let mut ops = Vec::new();
        for seg in &self.segments {
            match *seg {
                Segment::Vug { qubit, param } => {
                    // U = RZ(a)·RY(b)·RZ(c): RZ(c) acts first.
                    ops.push(ElemOp::Rot { axis: Axis::Z, qubit, param: param + 2 });
                    ops.push(ElemOp::Rot { axis: Axis::Y, qubit, param: param + 1 });
                    ops.push(ElemOp::Rot { axis: Axis::Z, qubit, param });
                }
                Segment::Cnot { control, target } => {
                    ops.push(ElemOp::Fixed(
                        Gate::CX
                            .unitary_matrix()
                            .embed(&[control, target], self.n_qubits),
                    ));
                }
            }
        }
        ops
    }

    /// Evaluates the template unitary at `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != n_params`.
    pub fn unitary(&self, params: &[f64]) -> Matrix {
        assert_eq!(params.len(), self.n_params, "parameter count mismatch");
        let dim = 1usize << self.n_qubits;
        let mut u = Matrix::identity(dim);
        for op in self.elem_ops() {
            let g = match op {
                ElemOp::Fixed(m) => m,
                ElemOp::Rot { axis, qubit, param } => axis
                    .rotation(params[param])
                    .embed(&[qubit], self.n_qubits),
            };
            u = g.matmul(&u);
        }
        u
    }

    /// Phase-invariant cost `1 − |Tr(target†·U(θ))| / d` and its gradient.
    ///
    /// # Panics
    ///
    /// Panics on parameter count mismatch.
    pub fn cost_and_grad(&self, target: &Matrix, params: &[f64]) -> (f64, Vec<f64>) {
        assert_eq!(params.len(), self.n_params, "parameter count mismatch");
        let dim = 1usize << self.n_qubits;
        let a = target.dagger();
        let ops = self.elem_ops();
        let k = ops.len();
        // Gate matrices.
        let mats: Vec<Matrix> = ops
            .iter()
            .map(|op| match op {
                ElemOp::Fixed(m) => m.clone(),
                ElemOp::Rot { axis, qubit, param } => axis
                    .rotation(params[*param])
                    .embed(&[*qubit], self.n_qubits),
            })
            .collect();
        // prefix[i] = G_{i-1}···G_1 (prefix[0] = I)
        let mut prefix = Vec::with_capacity(k + 1);
        prefix.push(Matrix::identity(dim));
        for m in &mats {
            let last = prefix.last().expect("non-empty");
            prefix.push(m.matmul(last));
        }
        // suffix[i] = G_k···G_{i+1} (suffix[k] = I)
        let mut suffix = vec![Matrix::identity(dim); k + 1];
        for i in (0..k).rev() {
            suffix[i] = suffix[i + 1].matmul(&mats[i]);
        }
        let u = &prefix[k];
        // f = Tr(A·U)
        let f = a.matmul(u).trace();
        let fabs = f.abs().max(1e-300);
        let cost = 1.0 - fabs / dim as f64;

        let mut grad = vec![0.0f64; self.n_params];
        for (i, op) in ops.iter().enumerate() {
            if let ElemOp::Rot { axis, qubit, param } = op {
                // dG_i = (−i P/2) embedded acting on G_i; embed is linear,
                // so dG_i = embed((−i P/2)·R) = scale·embed(P)·G_i-embedded?
                // embed(P·R) = embed(P)·embed(R) for same-qubit products.
                let p_embed = axis.generator().embed(&[*qubit], self.n_qubits);
                let dg = p_embed.matmul(&mats[i]).scale(c64(0.0, -0.5));
                // df = Tr(A · suffix_{i+1} · dG · prefix_i)
                let m = a
                    .matmul(&suffix[i + 1])
                    .matmul(&dg)
                    .matmul(&prefix[i]);
                let df = m.trace();
                // d|f|/dθ = Re(conj(f)·df)/|f|
                let dabs = (f.conj() * df).re / fabs;
                grad[*param] -= dabs / dim as f64;
            }
        }
        (cost, grad)
    }

    /// Phase-invariant distance `√max(cost, 0)` at `params`.
    pub fn distance(&self, target: &Matrix, params: &[f64]) -> f64 {
        let u = self.unitary(params);
        epoc_linalg::phase_invariant_distance(target, &u)
    }

    /// Optimizes the parameters toward `target` with Adam from a random
    /// start, returning `(params, distance)`.
    pub fn instantiate(
        &self,
        target: &Matrix,
        rng: &mut impl Rng,
        opts: &InstantiateOptions,
    ) -> (Vec<f64>, f64) {
        let mut best_params: Vec<f64> = Vec::new();
        let mut best_cost = f64::INFINITY;
        for _restart in 0..opts.restarts.max(1) {
            let mut params: Vec<f64> = (0..self.n_params)
                .map(|_| rng.gen_f64() * std::f64::consts::TAU)
                .collect();
            let mut m = vec![0.0f64; self.n_params];
            let mut v = vec![0.0f64; self.n_params];
            let (b1, b2, eps) = (0.9, 0.999, 1e-8);
            let mut cost = f64::INFINITY;
            for step in 1..=opts.max_iters {
                let (c, g) = self.cost_and_grad(target, &params);
                cost = c;
                if c < opts.cost_threshold {
                    break;
                }
                let lr = opts.learning_rate / (1.0 + 0.002 * step as f64);
                for j in 0..self.n_params {
                    m[j] = b1 * m[j] + (1.0 - b1) * g[j];
                    v[j] = b2 * v[j] + (1.0 - b2) * g[j] * g[j];
                    let mh = m[j] / (1.0 - b1.powi(step as i32));
                    let vh = v[j] / (1.0 - b2.powi(step as i32));
                    params[j] -= lr * mh / (vh.sqrt() + eps);
                }
            }
            if cost < best_cost {
                best_cost = cost;
                best_params = params;
                if best_cost < opts.cost_threshold {
                    break;
                }
            }
        }
        let dist = best_cost.max(0.0).sqrt();
        (best_params, dist)
    }

    /// Converts the instantiated template to a circuit of opaque 1-qubit
    /// VUG gates and CNOTs.
    ///
    /// # Panics
    ///
    /// Panics on parameter count mismatch.
    pub fn to_circuit(&self, params: &[f64]) -> Circuit {
        assert_eq!(params.len(), self.n_params, "parameter count mismatch");
        let mut c = Circuit::new(self.n_qubits);
        for seg in &self.segments {
            match *seg {
                Segment::Vug { qubit, param } => {
                    let u = Gate::RZ(params[param])
                        .unitary_matrix()
                        .matmul(&Gate::RY(params[param + 1]).unitary_matrix())
                        .matmul(&Gate::RZ(params[param + 2]).unitary_matrix());
                    if let Some(gate) = crate::vug_gate(&u) {
                        c.push(gate, &[qubit]);
                    }
                }
                Segment::Cnot { control, target } => {
                    c.push(Gate::CX, &[control, target]);
                }
            }
        }
        c
    }
}

/// Options controlling numerical instantiation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstantiateOptions {
    /// Adam iterations per restart.
    pub max_iters: usize,
    /// Random restarts.
    pub restarts: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Stop when the cost (distance²) drops below this.
    pub cost_threshold: f64,
}

impl Default for InstantiateOptions {
    fn default() -> Self {
        Self {
            max_iters: 400,
            restarts: 3,
            learning_rate: 0.2,
            cost_threshold: 1e-12,
        }
    }
}

/// Keep `Complex64` referenced for doc purposes.
#[doc(hidden)]
pub type _C = Complex64;

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_linalg::random_unitary;
    use epoc_rt::rng::StdRng;

    #[test]
    fn initial_template_shape() {
        let t = Template::initial(2);
        assert_eq!(t.n_params(), 6);
        assert_eq!(t.cnot_count(), 0);
        let u = t.unitary(&[0.0; 6]);
        assert!(u.approx_eq(&Matrix::identity(4), 1e-12));
    }

    #[test]
    fn cell_adds_cnot_and_vugs() {
        let mut t = Template::initial(2);
        t.push_cell(0, 1);
        assert_eq!(t.cnot_count(), 1);
        assert_eq!(t.n_params(), 12);
    }

    #[test]
    fn unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = Template::initial(3);
        t.push_cell(0, 1);
        t.push_cell(1, 2);
        let params: Vec<f64> = (0..t.n_params()).map(|_| rng.gen_f64() * 6.0).collect();
        assert!(t.unitary(&params).is_unitary(1e-9));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let target = random_unitary(4, &mut rng);
        let mut t = Template::initial(2);
        t.push_cell(0, 1);
        let params: Vec<f64> = (0..t.n_params()).map(|_| rng.gen_f64() * 6.0).collect();
        let (c0, grad) = t.cost_and_grad(&target, &params);
        let h = 1e-6;
        for j in 0..t.n_params() {
            let mut p = params.clone();
            p[j] += h;
            let (c1, _) = t.cost_and_grad(&target, &p);
            let fd = (c1 - c0) / h;
            assert!(
                (fd - grad[j]).abs() < 1e-4,
                "param {j}: fd {fd} vs analytic {}",
                grad[j]
            );
        }
    }

    #[test]
    fn instantiate_single_qubit_target() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let target = random_unitary(2, &mut rng);
            let t = Template::initial(1);
            let (params, dist) = t.instantiate(&target, &mut rng, &InstantiateOptions::default());
            assert!(dist < 1e-5, "distance {dist}");
            assert!(t.distance(&target, &params) < 1e-5);
        }
    }

    #[test]
    fn instantiate_cnot_target() {
        // CX itself needs one cell.
        let mut rng = StdRng::seed_from_u64(4);
        let target = Gate::CX.unitary_matrix();
        let mut t = Template::initial(2);
        t.push_cell(0, 1);
        let (_, dist) = t.instantiate(
            &target,
            &mut rng,
            &InstantiateOptions {
                restarts: 5,
                ..Default::default()
            },
        );
        assert!(dist < 1e-5, "distance {dist}");
    }

    #[test]
    fn to_circuit_matches_template_unitary() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = Template::initial(2);
        t.push_cell(0, 1);
        t.push_cell(1, 0);
        let params: Vec<f64> = (0..t.n_params()).map(|_| rng.gen_f64() * 6.0).collect();
        let c = t.to_circuit(&params);
        let d = epoc_linalg::phase_invariant_distance(&c.unitary(), &t.unitary(&params));
        assert!(d < 1e-7, "distance {d}");
        // Only VUGs and CNOTs appear.
        for op in c.ops() {
            assert!(matches!(op.gate, Gate::Unitary { .. } | Gate::CX | Gate::RZ(_)));
        }
    }

    #[test]
    fn to_circuit_skips_identity_vugs() {
        let t = Template::initial(2);
        let c = t.to_circuit(&[0.0; 6]);
        assert!(c.is_empty());
    }
}

//! Property-based tests for the synthesis crate.

use epoc_circuit::{circuits_equivalent, generators, Gate};
use epoc_linalg::{phase_invariant_distance, random_unitary};
use epoc_synth::{
    lower_to_vug_form, synthesize, synthesize_or_fallback, vug_gate, InstantiateOptions,
    SynthConfig, Template,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn single_qubit_synthesis_always_converges(seed in 0u64..2000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = random_unitary(2, &mut rng);
        let r = synthesize(&target, &SynthConfig { seed, ..Default::default() });
        prop_assert!(r.converged, "distance {}", r.distance);
        prop_assert!(phase_invariant_distance(&r.circuit.unitary(), &target) < 1e-4);
    }

    #[test]
    fn lower_to_vug_form_preserves_random_circuits(
        n in 2usize..4,
        gates in 1usize..15,
        seed in 0u64..2000,
    ) {
        let c = generators::random_circuit(n, gates, seed);
        let lowered = lower_to_vug_form(&c);
        prop_assert!(circuits_equivalent(&c, &lowered, 1e-6));
        for op in lowered.ops() {
            let in_vug_form = matches!(op.gate, Gate::Unitary { .. } | Gate::CX | Gate::RZ(_));
            prop_assert!(in_vug_form, "unexpected gate {}", op.gate);
        }
    }

    #[test]
    fn fallback_is_always_sound(
        gates in 1usize..10,
        seed in 0u64..1000,
    ) {
        // Even with a zero search budget, synthesize_or_fallback returns a
        // faithful circuit.
        let c = generators::random_circuit(2, gates, seed);
        let target = c.unitary();
        let cfg = SynthConfig { max_nodes: 1, max_cnots: 0, seed, ..Default::default() };
        let r = synthesize_or_fallback(&target, &c, &cfg);
        prop_assert!(r.converged);
        prop_assert!(circuits_equivalent(&c, &r.circuit, 1e-5));
    }

    #[test]
    fn template_gradient_matches_fd_random_structure(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = random_unitary(4, &mut rng);
        let mut t = Template::initial(2);
        t.push_cell(seed as usize % 2, (seed as usize + 1) % 2);
        let params: Vec<f64> = (0..t.n_params())
            .map(|i| ((seed as f64) * 0.37 + i as f64 * 0.91) % 6.28)
            .collect();
        let (c0, grad) = t.cost_and_grad(&target, &params);
        let h = 1e-6;
        for j in 0..t.n_params() {
            let mut p = params.clone();
            p[j] += h;
            let (c1, _) = t.cost_and_grad(&target, &p);
            let fd = (c1 - c0) / h;
            prop_assert!((fd - grad[j]).abs() < 1e-4, "param {j}: {fd} vs {}", grad[j]);
        }
    }

    #[test]
    fn vug_gate_classification(seed in 0u64..1000, theta in -3.0..3.0f64) {
        // Diagonal unitaries become virtual RZ; identity becomes nothing.
        let rz = Gate::RZ(theta).unitary_matrix();
        match vug_gate(&rz) {
            None => prop_assert!(theta.abs() < 1e-6),
            Some(Gate::RZ(t)) => {
                let d = Gate::RZ(t).unitary_matrix();
                prop_assert!(phase_invariant_distance(&d, &rz) < 1e-7);
            }
            Some(g) => prop_assert!(false, "diagonal became {g}"),
        }
        // Generic unitaries become opaque VUGs.
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random_unitary(2, &mut rng);
        if u[(0, 1)].abs() > 1e-4 {
            let is_opaque = matches!(vug_gate(&u), Some(Gate::Unitary { .. }));
            prop_assert!(is_opaque);
        }
    }
}

#[test]
fn instantiate_respects_cost_threshold_shortcut() {
    // A loose threshold must not loop to max_iters on an easy target.
    let mut rng = StdRng::seed_from_u64(7);
    let target = Gate::T.unitary_matrix();
    let t = Template::initial(1);
    let (_, dist) = t.instantiate(
        &target,
        &mut rng,
        &InstantiateOptions {
            cost_threshold: 1e-6,
            ..Default::default()
        },
    );
    assert!(dist < 2e-3, "distance {dist}");
}

#[test]
fn synthesis_reduces_cnots_on_compressible_blocks() {
    // CX·CX = I: QSearch should find a 0-CNOT implementation.
    let mut c = epoc_circuit::Circuit::new(2);
    c.push(Gate::CX, &[0, 1]).push(Gate::CX, &[0, 1]);
    let r = synthesize(&c.unitary(), &SynthConfig::default());
    assert!(r.converged);
    assert_eq!(r.cnots, 0, "identity synthesized with {} CNOTs", r.cnots);
}

//! Property-based tests for the synthesis crate.
//!
//! Ported from `proptest!` macros to `epoc_rt::check`, preserving the
//! 16-case counts.

use epoc_circuit::{circuits_equivalent, generators, Gate};
use epoc_linalg::{phase_invariant_distance, random_unitary};
use epoc_rt::check::property;
use epoc_rt::rng::StdRng;
use epoc_synth::{
    lower_to_vug_form, synthesize, synthesize_or_fallback, vug_gate, InstantiateOptions,
    SynthConfig, Template,
};

#[test]
fn single_qubit_synthesis_always_converges() {
    property("single_qubit_synthesis_always_converges")
        .cases(16)
        .run(|g| {
            let seed = g.u64_in(0, 2000);
            let mut rng = StdRng::seed_from_u64(seed);
            let target = random_unitary(2, &mut rng);
            let r = synthesize(&target, &SynthConfig { seed, ..Default::default() }).unwrap();
            assert!(r.converged, "seed={seed} distance {}", r.distance);
            assert!(phase_invariant_distance(&r.circuit.unitary(), &target) < 1e-4);
        });
}

#[test]
fn lower_to_vug_form_preserves_random_circuits() {
    property("lower_to_vug_form_preserves_random_circuits")
        .cases(16)
        .run(|g| {
            let n = g.usize_in(2, 4);
            let gates = g.usize_in(1, 15);
            let seed = g.u64_in(0, 2000);
            let c = generators::random_circuit(n, gates, seed);
            let lowered = lower_to_vug_form(&c).unwrap();
            assert!(
                circuits_equivalent(&c, &lowered, 1e-6),
                "n={n} gates={gates} seed={seed}"
            );
            for op in lowered.ops() {
                let in_vug_form = matches!(op.gate, Gate::Unitary { .. } | Gate::CX | Gate::RZ(_));
                assert!(in_vug_form, "unexpected gate {}", op.gate);
            }
        });
}

#[test]
fn fallback_is_always_sound() {
    property("fallback_is_always_sound").cases(16).run(|g| {
        let gates = g.usize_in(1, 10);
        let seed = g.u64_in(0, 1000);
        // Even with a zero search budget, synthesize_or_fallback returns a
        // faithful circuit.
        let c = generators::random_circuit(2, gates, seed);
        let target = c.unitary();
        let cfg = SynthConfig { max_nodes: 1, max_cnots: 0, seed, ..Default::default() };
        let r = synthesize_or_fallback(&target, &c, &cfg).unwrap();
        assert!(r.converged);
        assert!(circuits_equivalent(&c, &r.circuit, 1e-5), "gates={gates} seed={seed}");
    });
}

#[test]
fn template_gradient_matches_fd_random_structure() {
    property("template_gradient_matches_fd_random_structure")
        .cases(16)
        .run(|g| {
            let seed = g.u64_in(0, 300);
            let mut rng = StdRng::seed_from_u64(seed);
            let target = random_unitary(4, &mut rng);
            let mut t = Template::initial(2);
            t.push_cell(seed as usize % 2, (seed as usize + 1) % 2);
            let params: Vec<f64> = (0..t.n_params())
                .map(|i| ((seed as f64) * 0.37 + i as f64 * 0.91) % std::f64::consts::TAU)
                .collect();
            let (c0, grad) = t.cost_and_grad(&target, &params);
            let h = 1e-6;
            for j in 0..t.n_params() {
                let mut p = params.clone();
                p[j] += h;
                let (c1, _) = t.cost_and_grad(&target, &p);
                let fd = (c1 - c0) / h;
                assert!(
                    (fd - grad[j]).abs() < 1e-4,
                    "seed={seed} param {j}: {fd} vs {}",
                    grad[j]
                );
            }
        });
}

#[test]
fn vug_gate_classification() {
    property("vug_gate_classification").cases(16).run(|g| {
        let seed = g.u64_in(0, 1000);
        let theta = g.f64_in(-3.0, 3.0);
        // Diagonal unitaries become virtual RZ; identity becomes nothing.
        let rz = Gate::RZ(theta).unitary_matrix();
        match vug_gate(&rz) {
            None => assert!(theta.abs() < 1e-6, "theta={theta}"),
            Some(Gate::RZ(t)) => {
                let d = Gate::RZ(t).unitary_matrix();
                assert!(phase_invariant_distance(&d, &rz) < 1e-7, "theta={theta}");
            }
            Some(g) => panic!("diagonal became {g}"),
        }
        // Generic unitaries become opaque VUGs.
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random_unitary(2, &mut rng);
        if u[(0, 1)].abs() > 1e-4 {
            let is_opaque = matches!(vug_gate(&u), Some(Gate::Unitary { .. }));
            assert!(is_opaque, "seed={seed}");
        }
    });
}

#[test]
fn instantiate_respects_cost_threshold_shortcut() {
    // A loose threshold must not loop to max_iters on an easy target.
    let mut rng = StdRng::seed_from_u64(7);
    let target = Gate::T.unitary_matrix();
    let t = Template::initial(1);
    let (_, dist) = t.instantiate(
        &target,
        &mut rng,
        &InstantiateOptions {
            cost_threshold: 1e-6,
            ..Default::default()
        },
    );
    assert!(dist < 2e-3, "distance {dist}");
}

#[test]
fn synthesis_reduces_cnots_on_compressible_blocks() {
    // CX·CX = I: QSearch should find a 0-CNOT implementation.
    let mut c = epoc_circuit::Circuit::new(2);
    c.push(Gate::CX, &[0, 1]).push(Gate::CX, &[0, 1]);
    let r = synthesize(&c.unitary(), &SynthConfig::default()).unwrap();
    assert!(r.converged);
    assert_eq!(r.cnots, 0, "identity synthesized with {} CNOTs", r.cnots);
}

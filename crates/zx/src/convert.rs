//! Circuit ↔ ZX conversion.
//!
//! [`circuit_to_graph`] first lowers the circuit to the ZX-native gate set
//! `{RZ, H, CX, CZ}` (every gate in `epoc-circuit` has a verified lowering)
//! and then builds a **graph-like** diagram directly: Z spiders, Hadamard
//! edges, and boundary vertices — Hadamard gates become pending edge-kind
//! toggles rather than vertices.

use crate::graph::{EdgeKind, Vertex, VertexKind, ZxGraph};
use crate::phase::Phase;
use epoc_circuit::{append_controlled_unitary, Circuit, Gate};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// Error produced when a circuit cannot be converted to ZX form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvertError {
    /// The circuit contains an opaque unitary block (synthesize first).
    OpaqueBlock,
}

impl std::fmt::Display for ConvertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvertError::OpaqueBlock => {
                write!(f, "opaque unitary blocks cannot be converted to ZX diagrams")
            }
        }
    }
}

impl std::error::Error for ConvertError {}

/// Lowers a circuit to the ZX-native gate set `{RZ, H, CX, CZ}` (plus
/// `Phase`, which is `RZ` up to global phase and is emitted as `RZ`).
///
/// The output is semantically equal to the input up to global phase.
///
/// # Errors
///
/// Returns [`ConvertError::OpaqueBlock`] for circuits containing opaque
/// unitary blocks.
pub fn lower_for_zx(circuit: &Circuit) -> Result<Circuit, ConvertError> {
    let mut out = Circuit::new(circuit.n_qubits());
    for op in circuit.ops() {
        lower_gate(&op.gate, &op.qubits, &mut out)?;
    }
    Ok(out)
}

fn rz(c: &mut Circuit, q: usize, theta: f64) {
    if Phase::from_radians(theta).is_zero() {
        return;
    }
    c.push(Gate::RZ(theta), &[q]);
}

fn rx(c: &mut Circuit, q: usize, theta: f64) {
    if Phase::from_radians(theta).is_zero() {
        return;
    }
    c.push(Gate::H, &[q]);
    c.push(Gate::RZ(theta), &[q]);
    c.push(Gate::H, &[q]);
}

fn ry(c: &mut Circuit, q: usize, theta: f64) {
    // RY(θ) = RZ(π/2) · RX(θ) · RZ(−π/2)  (apply RZ(−π/2) first)
    if Phase::from_radians(theta).is_zero() {
        return;
    }
    rz(c, q, -FRAC_PI_2);
    rx(c, q, theta);
    rz(c, q, FRAC_PI_2);
}

fn lower_gate(gate: &Gate, qubits: &[usize], out: &mut Circuit) -> Result<(), ConvertError> {
    use Gate::*;
    let q = |i: usize| qubits[i];
    match gate {
        I => {}
        X => rx(out, q(0), PI),
        Y => {
            rz(out, q(0), PI);
            rx(out, q(0), PI);
        }
        Z => rz(out, q(0), PI),
        H => {
            out.push(H.clone(), &[q(0)]);
        }
        S => rz(out, q(0), FRAC_PI_2),
        Sdg => rz(out, q(0), -FRAC_PI_2),
        T => rz(out, q(0), FRAC_PI_4),
        Tdg => rz(out, q(0), -FRAC_PI_4),
        Sx => rx(out, q(0), FRAC_PI_2),
        Sxdg => rx(out, q(0), -FRAC_PI_2),
        RX(t) => rx(out, q(0), *t),
        RY(t) => ry(out, q(0), *t),
        RZ(t) => rz(out, q(0), *t),
        Phase(t) => rz(out, q(0), *t),
        U2(phi, lam) => {
            // U3(π/2, φ, λ)
            lower_gate(&U3(FRAC_PI_2, *phi, *lam), qubits, out)?;
        }
        U3(t, phi, lam) => {
            // U3 = RZ(φ) RY(θ) RZ(λ) up to phase; RZ(λ) first.
            rz(out, q(0), *lam);
            ry(out, q(0), *t);
            rz(out, q(0), *phi);
        }
        CX => {
            out.push(CX.clone(), &[q(0), q(1)]);
        }
        CZ => {
            out.push(CZ.clone(), &[q(0), q(1)]);
        }
        CY => {
            rz(out, q(1), -FRAC_PI_2);
            out.push(CX.clone(), &[q(0), q(1)]);
            rz(out, q(1), FRAC_PI_2);
        }
        CH | CRX(_) | CRY(_) => {
            let u = match gate {
                CH => Gate::H.unitary_matrix(),
                CRX(t) => Gate::RX(*t).unitary_matrix(),
                CRY(t) => Gate::RY(*t).unitary_matrix(),
                _ => unreachable!(),
            };
            let mut tmp = Circuit::new(out.n_qubits());
            append_controlled_unitary(&mut tmp, &u, q(0), q(1));
            for op in tmp.ops() {
                lower_gate(&op.gate, &op.qubits, out)?;
            }
        }
        CRZ(t) => {
            rz(out, q(1), t / 2.0);
            out.push(CX.clone(), &[q(0), q(1)]);
            rz(out, q(1), -t / 2.0);
            out.push(CX.clone(), &[q(0), q(1)]);
        }
        CPhase(t) => {
            // cp(λ) = rz(λ/2) ⊗ rz(λ/2) with a crz-style correction.
            rz(out, q(0), t / 2.0);
            rz(out, q(1), t / 2.0);
            out.push(CX.clone(), &[q(0), q(1)]);
            rz(out, q(1), -t / 2.0);
            out.push(CX.clone(), &[q(0), q(1)]);
        }
        RZZ(t) => {
            out.push(CX.clone(), &[q(0), q(1)]);
            rz(out, q(1), *t);
            out.push(CX.clone(), &[q(0), q(1)]);
        }
        RXX(t) => {
            out.push(H.clone(), &[q(0)]);
            out.push(H.clone(), &[q(1)]);
            out.push(CX.clone(), &[q(0), q(1)]);
            rz(out, q(1), *t);
            out.push(CX.clone(), &[q(0), q(1)]);
            out.push(H.clone(), &[q(0)]);
            out.push(H.clone(), &[q(1)]);
        }
        Swap => {
            out.push(CX.clone(), &[q(0), q(1)]);
            out.push(CX.clone(), &[q(1), q(0)]);
            out.push(CX.clone(), &[q(0), q(1)]);
        }
        CCX => {
            // Standard 6-CX Toffoli.
            let (a, b, c) = (q(0), q(1), q(2));
            out.push(H.clone(), &[c]);
            out.push(CX.clone(), &[b, c]);
            rz(out, c, -FRAC_PI_4);
            out.push(CX.clone(), &[a, c]);
            rz(out, c, FRAC_PI_4);
            out.push(CX.clone(), &[b, c]);
            rz(out, c, -FRAC_PI_4);
            out.push(CX.clone(), &[a, c]);
            rz(out, b, FRAC_PI_4);
            rz(out, c, FRAC_PI_4);
            out.push(CX.clone(), &[a, b]);
            rz(out, a, FRAC_PI_4);
            rz(out, b, -FRAC_PI_4);
            out.push(CX.clone(), &[a, b]);
            out.push(H.clone(), &[c]);
        }
        CCZ => {
            out.push(H.clone(), &[q(2)]);
            lower_gate(&CCX, qubits, out)?;
            out.push(H.clone(), &[q(2)]);
        }
        CSwap => {
            out.push(CX.clone(), &[q(2), q(1)]);
            lower_gate(&CCX, &[q(0), q(1), q(2)], out)?;
            out.push(CX.clone(), &[q(2), q(1)]);
        }
        Unitary { .. } => return Err(ConvertError::OpaqueBlock),
    }
    Ok(())
}

/// Converts a circuit to a graph-like ZX diagram.
///
/// # Errors
///
/// Returns [`ConvertError::OpaqueBlock`] for circuits containing opaque
/// unitary blocks.
///
/// # Examples
///
/// ```
/// use epoc_circuit::{Circuit, Gate};
/// use epoc_zx::circuit_to_graph;
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
/// let g = circuit_to_graph(&c)?;
/// assert_eq!(g.inputs().len(), 2);
/// assert_eq!(g.outputs().len(), 2);
/// # Ok::<(), epoc_zx::ConvertError>(())
/// ```
pub fn circuit_to_graph(circuit: &Circuit) -> Result<ZxGraph, ConvertError> {
    let lowered = lower_for_zx(circuit)?;
    let n = lowered.n_qubits();
    let mut g = ZxGraph::new();
    // Per-qubit: last attached vertex and the pending edge kind (toggled by
    // H gates) to use for the next attachment.
    let mut last: Vec<Vertex> = Vec::with_capacity(n);
    let mut pending: Vec<EdgeKind> = vec![EdgeKind::Simple; n];
    for _ in 0..n {
        let b = g.add_vertex(VertexKind::Boundary);
        g.set_input(b);
        last.push(b);
    }

    // Attaches a fresh phase-0 Z spider to wire `q`, consuming the pending
    // edge kind, and returns it.
    fn attach(g: &mut ZxGraph, last: &mut [Vertex], pending: &mut [EdgeKind], q: usize) -> Vertex {
        let s = g.add_vertex(VertexKind::Z(Phase::ZERO));
        g.add_edge(last[q], s, pending[q]);
        last[q] = s;
        pending[q] = EdgeKind::Simple;
        s
    }

    for op in lowered.ops() {
        match &op.gate {
            Gate::H => {
                let q = op.qubits[0];
                pending[q] = pending[q].compose(EdgeKind::Hadamard);
            }
            Gate::RZ(t) => {
                let q = op.qubits[0];
                let s = attach(&mut g, &mut last, &mut pending, q);
                g.add_phase(s, Phase::from_radians(*t));
            }
            Gate::CZ => {
                let a = op.qubits[0];
                let b = op.qubits[1];
                let sa = attach(&mut g, &mut last, &mut pending, a);
                let sb = attach(&mut g, &mut last, &mut pending, b);
                g.add_edge_smart(sa, sb, EdgeKind::Hadamard);
            }
            Gate::CX => {
                // CX = (I⊗H)·CZ·(I⊗H): toggle target wire around a CZ.
                let c = op.qubits[0];
                let t = op.qubits[1];
                let sc = attach(&mut g, &mut last, &mut pending, c);
                pending[t] = pending[t].compose(EdgeKind::Hadamard);
                let st = attach(&mut g, &mut last, &mut pending, t);
                pending[t] = EdgeKind::Hadamard;
                g.add_edge_smart(sc, st, EdgeKind::Hadamard);
            }
            other => unreachable!("lowering produced unexpected gate {other}"),
        }
    }

    for q in 0..n {
        let b = g.add_vertex(VertexKind::Boundary);
        g.add_edge(last[q], b, pending[q]);
        g.set_output(b);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{graph_to_matrix, proportional};
    use epoc_circuit::{circuits_equivalent, generators, Circuit, Gate};

    fn check_lowering(gate: Gate, qubits: &[usize], n: usize) {
        let mut c = Circuit::new(n);
        c.push(gate.clone(), qubits);
        let lowered = lower_for_zx(&c).unwrap();
        assert!(
            circuits_equivalent(&c, &lowered, 1e-7),
            "lowering changed semantics of {gate}"
        );
        for op in lowered.ops() {
            assert!(
                matches!(op.gate, Gate::H | Gate::RZ(_) | Gate::CX | Gate::CZ),
                "lowering left gate {}",
                op.gate
            );
        }
    }

    #[test]
    fn all_single_qubit_gates_lower() {
        for gate in [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::RX(0.7),
            Gate::RY(-1.2),
            Gate::RZ(2.5),
            Gate::Phase(0.4),
            Gate::U2(0.3, -0.8),
            Gate::U3(1.1, 0.2, -0.9),
        ] {
            check_lowering(gate, &[0], 1);
        }
    }

    #[test]
    fn all_two_qubit_gates_lower() {
        for gate in [
            Gate::CX,
            Gate::CY,
            Gate::CZ,
            Gate::CH,
            Gate::CRX(0.6),
            Gate::CRY(-0.6),
            Gate::CRZ(1.4),
            Gate::CPhase(0.9),
            Gate::RZZ(0.5),
            Gate::RXX(-0.5),
            Gate::Swap,
        ] {
            check_lowering(gate.clone(), &[0, 1], 2);
            check_lowering(gate, &[1, 0], 2);
        }
    }

    #[test]
    fn three_qubit_gates_lower() {
        for gate in [Gate::CCX, Gate::CCZ, Gate::CSwap] {
            check_lowering(gate.clone(), &[0, 1, 2], 3);
            check_lowering(gate, &[2, 0, 1], 3);
        }
    }

    #[test]
    fn opaque_block_is_error() {
        let mut c = Circuit::new(2);
        c.push(Gate::unitary("blk", Gate::CX.unitary_matrix()), &[0, 1]);
        assert_eq!(lower_for_zx(&c).unwrap_err(), ConvertError::OpaqueBlock);
        assert_eq!(circuit_to_graph(&c).unwrap_err(), ConvertError::OpaqueBlock);
    }

    fn check_graph_semantics(c: &Circuit) {
        let g = circuit_to_graph(c).unwrap();
        let m = graph_to_matrix(&g).unwrap();
        let u = c.unitary();
        assert!(
            proportional(&m, &u, 1e-8),
            "graph semantics mismatch for circuit:\n{c}\ngraph: {g:?}"
        );
    }

    #[test]
    fn graph_semantics_single_gates() {
        for gate in [Gate::H, Gate::S, Gate::T, Gate::X, Gate::Z, Gate::RZ(0.7)] {
            let mut c = Circuit::new(1);
            c.push(gate, &[0]);
            check_graph_semantics(&c);
        }
    }

    #[test]
    fn graph_semantics_two_qubit() {
        for gate in [Gate::CX, Gate::CZ, Gate::Swap, Gate::RZZ(0.8)] {
            let mut c = Circuit::new(2);
            c.push(gate.clone(), &[0, 1]);
            check_graph_semantics(&c);
            let mut c = Circuit::new(2);
            c.push(gate, &[1, 0]);
            check_graph_semantics(&c);
        }
    }

    #[test]
    fn graph_semantics_bell_and_ghz() {
        check_graph_semantics(&generators::ghz(2));
        check_graph_semantics(&generators::ghz(3));
    }

    #[test]
    fn graph_semantics_mixed_program() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0])
            .push(Gate::T, &[1])
            .push(Gate::CX, &[0, 1])
            .push(Gate::S, &[0])
            .push(Gate::CZ, &[1, 0])
            .push(Gate::H, &[1]);
        check_graph_semantics(&c);
    }

    #[test]
    fn graph_semantics_hadamard_only() {
        // Pure-H circuits exercise the boundary-to-boundary wire path.
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::H, &[1]).push(Gate::H, &[0]);
        check_graph_semantics(&c);
    }

    #[test]
    fn empty_circuit_graph() {
        let c = Circuit::new(2);
        let g = circuit_to_graph(&c).unwrap();
        let m = graph_to_matrix(&g).unwrap();
        assert!(proportional(&m, &epoc_linalg::Matrix::identity(4), 1e-10));
    }

    #[test]
    fn spider_counts_reasonable() {
        let c = generators::ghz(3);
        let g = circuit_to_graph(&c).unwrap();
        // 1 H + 2 CX → each CX contributes 2 spiders.
        assert_eq!(g.spider_count(), 4);
        assert_eq!(g.inputs().len(), 3);
        assert_eq!(g.outputs().len(), 3);
    }
}

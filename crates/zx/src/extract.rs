//! Circuit extraction from graph-like ZX diagrams.
//!
//! Implements the frontier-based extraction of Duncan–Kissinger–Perdrix–
//! van de Wetering: peel gates off the output side (RZ phases, CZ for
//! frontier–frontier Hadamard edges, H to advance the frontier) and use
//! GF(2) Gaussian elimination over the frontier biadjacency — each row
//! operation emitted as a CNOT — to expose frontier vertices with a unique
//! neighbor. Diagrams produced by [`crate::simplify::interior_clifford_simp`]
//! on circuit-derived graphs have gflow, so extraction always succeeds on
//! them; a defensive [`ExtractError`] covers malformed input.

use crate::graph::{EdgeKind, Vertex, ZxGraph};
use crate::simplify::fuse_all;
use epoc_circuit::{Circuit, Gate};

/// Error from [`extract_circuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// Input/output boundary counts differ.
    BoundaryMismatch,
    /// Extraction got stuck — the diagram has no gflow from the outputs.
    NoGflow,
    /// Structural problem (message describes it).
    Malformed(String),
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::BoundaryMismatch => write!(f, "input/output counts differ"),
            ExtractError::NoGflow => write!(f, "diagram has no gflow; extraction stuck"),
            ExtractError::Malformed(m) => write!(f, "malformed diagram: {m}"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// Extracts an equivalent circuit (up to global phase) from a graph-like
/// diagram.
///
/// The diagram is consumed conceptually (a clone is mutated). Gates in the
/// result are drawn from `{RZ, H, CZ, CX, Swap}`.
///
/// # Errors
///
/// Returns [`ExtractError`] when the diagram is not a unitary circuit
/// diagram or lacks gflow.
pub fn extract_circuit(graph: &ZxGraph) -> Result<Circuit, ExtractError> {
    let mut g = graph.clone();
    // Make sure no simple Z-Z edges remain (extraction assumes graph-like).
    fuse_all(&mut g);

    let n = g.outputs().len();
    if g.inputs().len() != n {
        return Err(ExtractError::BoundaryMismatch);
    }
    // Normalize input wires: the GF(2) row operations below treat every
    // column edge as a Hadamard edge, so a *simple* spider–input wire in a
    // column would be silently mis-handled. Split each spider–input edge
    // with a phase-0 spider (identity insertion) so the spider-facing edge
    // is always Hadamard; the leftover wire kind moves next to the input
    // and is emitted as an H gate during final wiring.
    for b in g.inputs().to_vec() {
        let nbrs: Vec<(Vertex, EdgeKind)> = g.neighbors(b).collect();
        if nbrs.len() != 1 {
            return Err(ExtractError::Malformed("input has degree != 1".into()));
        }
        let (v, kind) = nbrs[0];
        if g.kind(v).is_boundary() {
            continue; // bare input-output wire
        }
        g.remove_edge(b, v);
        let w = g.add_vertex(crate::graph::VertexKind::Z(crate::phase::Phase::ZERO));
        g.add_edge(v, w, EdgeKind::Hadamard);
        g.add_edge(w, b, kind.compose(EdgeKind::Hadamard));
    }
    let inputs: Vec<Vertex> = g.inputs().to_vec();
    let outputs: Vec<Vertex> = g.outputs().to_vec();
    let input_index = |v: Vertex| inputs.iter().position(|&x| x == v);

    // Gates emitted output-side-first.
    let mut rev_ops: Vec<(Gate, Vec<usize>)> = Vec::new();

    // frontier[q] = the vertex currently adjacent to output q (spider, or
    // input boundary when the wire is fully extracted).
    let mut frontier: Vec<Vertex> = Vec::with_capacity(n);
    for (q, &o) in outputs.iter().enumerate() {
        let nbrs: Vec<(Vertex, EdgeKind)> = g.neighbors(o).collect();
        if nbrs.len() != 1 {
            return Err(ExtractError::Malformed(format!(
                "output {q} has degree {}",
                nbrs.len()
            )));
        }
        let (v, kind) = nbrs[0];
        if kind == EdgeKind::Hadamard {
            rev_ops.push((Gate::H, vec![q]));
            g.remove_edge(o, v);
            g.add_edge(o, v, EdgeKind::Simple);
        }
        frontier.push(v);
    }

    let is_output = |v: Vertex| outputs.contains(&v);
    let max_steps = 16 * (g.vertex_count() + g.edge_count() + 4) * (n + 1);
    let mut steps = 0usize;

    loop {
        steps += 1;
        if steps > max_steps {
            return Err(ExtractError::NoGflow);
        }
        // Step 1: clear frontier phases.
        for (q, &v) in frontier.iter().enumerate() {
            if input_index(v).is_some() {
                continue;
            }
            let phase = g.kind(v).phase();
            if !phase.is_zero() {
                rev_ops.push((Gate::RZ(phase.radians()), vec![q]));
                let kind = g.kind(v);
                g.set_kind(
                    v,
                    match kind {
                        crate::graph::VertexKind::Z(_) => {
                            crate::graph::VertexKind::Z(crate::phase::Phase::ZERO)
                        }
                        other => other,
                    },
                );
            }
        }
        // Step 2: frontier-frontier Hadamard edges become CZ gates.
        for qa in 0..n {
            for qb in (qa + 1)..n {
                let (va, vb) = (frontier[qa], frontier[qb]);
                if input_index(va).is_some() || input_index(vb).is_some() {
                    continue;
                }
                if g.edge_kind(va, vb) == Some(EdgeKind::Hadamard) {
                    rev_ops.push((Gate::CZ, vec![qa, qb]));
                    g.remove_edge(va, vb);
                }
            }
        }
        // Step 3: done check — every frontier entry is an input boundary or
        // a spider connected only to its output and one input.
        let finished = |g: &ZxGraph, v: Vertex| -> bool {
            if input_index(v).is_some() {
                return true;
            }
            let mut saw_input = false;
            for (w, _) in g.neighbors(v) {
                if is_output(w) {
                    continue;
                }
                if input_index(w).is_some() && !saw_input {
                    saw_input = true;
                } else {
                    return false;
                }
            }
            true
        };
        if (0..n).all(|q| finished(&g, frontier[q])) {
            break;
        }
        // Step 4: advance the frontier where a spider has exactly one
        // non-output neighbor that is an interior spider.
        let mut advanced = false;
        for q in 0..n {
            let v = frontier[q];
            if input_index(v).is_some() {
                continue;
            }
            if !g.kind(v).phase().is_zero() {
                continue; // phase appeared via row ops? (cannot, but be safe)
            }
            let non_out: Vec<(Vertex, EdgeKind)> =
                g.neighbors(v).filter(|&(w, _)| !is_output(w)).collect();
            if non_out.len() != 1 {
                continue;
            }
            let (w, kind) = non_out[0];
            if input_index(w).is_some() {
                continue; // finished wire; handled at the end
            }
            if frontier.contains(&w) {
                continue; // another wire already owns w
            }
            if kind != EdgeKind::Hadamard {
                return Err(ExtractError::Malformed(
                    "simple spider-spider edge survived fusion".into(),
                ));
            }
            // v acts as a Hadamard wire: emit H, splice w to the output.
            rev_ops.push((Gate::H, vec![q]));
            let o = outputs[q];
            g.remove_vertex(v);
            g.add_edge(o, w, EdgeKind::Simple);
            frontier[q] = w;
            advanced = true;
            break; // re-run phase/CZ clearing for the new frontier vertex
        }
        if advanced {
            continue;
        }
        // Step 5: GF(2) Gaussian elimination on the frontier biadjacency.
        let rows: Vec<usize> = (0..n)
            .filter(|&q| input_index(frontier[q]).is_none())
            .collect();
        let mut cols: Vec<Vertex> = Vec::new();
        for &q in &rows {
            for (w, _) in g.neighbors(frontier[q]) {
                if !is_output(w) && !frontier.contains(&w) && !cols.contains(&w) {
                    cols.push(w);
                }
            }
        }
        if cols.is_empty() {
            return Err(ExtractError::NoGflow);
        }
        let mut m: Vec<Vec<bool>> = rows
            .iter()
            .map(|&q| {
                cols.iter()
                    .map(|&w| g.connected(frontier[q], w))
                    .collect()
            })
            .collect();
        // Full Gauss–Jordan over GF(2), recording row ops.
        let mut row_ops: Vec<(usize, usize)> = Vec::new(); // (target, source)
        let mut pivot_row = 0usize;
        for col in 0..cols.len() {
            if pivot_row >= rows.len() {
                break;
            }
            let Some(p) = (pivot_row..rows.len()).find(|&r| m[r][col]) else {
                continue;
            };
            if p != pivot_row {
                // Swap via three additions to keep everything as row ops.
                for &(t, s) in &[(pivot_row, p), (p, pivot_row), (pivot_row, p)] {
                    let src = m[s].clone();
                    for (dst, v) in m[t].iter_mut().zip(src) {
                        *dst ^= v;
                    }
                    row_ops.push((t, s));
                }
            }
            for r in 0..rows.len() {
                if r != pivot_row && m[r][col] {
                    let src = m[pivot_row].clone();
                    for (dst, v) in m[r].iter_mut().zip(src) {
                        *dst ^= v;
                    }
                    row_ops.push((r, pivot_row));
                }
            }
            pivot_row += 1;
        }
        if row_ops.is_empty() {
            // Matrix already reduced but no advance was possible: stuck.
            return Err(ExtractError::NoGflow);
        }
        // Apply the row ops to the graph and emit CNOTs.
        for (t, s) in row_ops {
            let (qt, qs) = (rows[t], rows[s]);
            let (vt, vs) = (frontier[qt], frontier[qs]);
            // Row op: N(vt) ^= N(vs) over the column set.
            let svn: Vec<Vertex> = g
                .neighbors(vs)
                .filter(|&(w, _)| !is_output(w) && cols.contains(&w))
                .map(|(w, _)| w)
                .collect();
            for w in svn {
                if g.edge_kind(vt, w) == Some(EdgeKind::Hadamard) {
                    g.remove_edge(vt, w);
                } else {
                    g.add_edge(vt, w, EdgeKind::Hadamard);
                }
            }
            rev_ops.push((Gate::CX, vec![qt, qs]));
        }
    }

    // Final wiring: compute which input feeds each output, emitting H for
    // Hadamard wire kinds, then realize the permutation with swaps.
    let mut perm: Vec<usize> = vec![usize::MAX; n];
    for q in 0..n {
        let v = frontier[q];
        if let Some(i) = input_index(v) {
            // Direct output-input wire; the o–v edge kind was normalized to
            // simple at the start (H emitted), so nothing more to do.
            perm[q] = i;
            continue;
        }
        // Finished spider: phase 0, edges = output (simple) + input (kind).
        let mut input_edge: Option<(Vertex, EdgeKind)> = None;
        for (w, k) in g.neighbors(v) {
            if is_output(w) {
                continue;
            }
            match input_index(w) {
                Some(_) => input_edge = Some((w, k)),
                None => {
                    return Err(ExtractError::Malformed(
                        "finished spider has interior neighbor".into(),
                    ))
                }
            }
        }
        let (w, k) = input_edge.ok_or(ExtractError::NoGflow)?;
        if k == EdgeKind::Hadamard {
            rev_ops.push((Gate::H, vec![q]));
        }
        if !g.kind(v).phase().is_zero() {
            rev_ops.push((Gate::RZ(g.kind(v).phase().radians()), vec![q]));
        }
        perm[q] = input_index(w).expect("checked above");
    }
    if perm.contains(&usize::MAX) {
        return Err(ExtractError::Malformed("unassigned output wire".into()));
    }
    {
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        if sorted != (0..n).collect::<Vec<_>>() {
            return Err(ExtractError::Malformed("boundary wiring is not a permutation".into()));
        }
    }

    // Assemble: permutation first (acts on inputs), then reversed rev_ops.
    let mut circuit = Circuit::new(n);
    let mut pos: Vec<usize> = (0..n).collect(); // pos[q] = input currently at wire q
    for q in 0..n {
        if pos[q] == perm[q] {
            continue;
        }
        let src = pos
            .iter()
            .position(|&x| x == perm[q])
            .expect("permutation is a bijection");
        circuit.push(Gate::Swap, &[q, src]);
        pos.swap(q, src);
    }
    for (gate, qubits) in rev_ops.into_iter().rev() {
        circuit.push(gate, &qubits);
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::circuit_to_graph;
    use crate::simplify::full_reduce;
    use epoc_circuit::{circuits_equivalent, generators, Circuit, Gate};

    /// Round-trip: circuit → ZX → simplify → extract must preserve
    /// semantics (up to global phase).
    fn check_round_trip(c: &Circuit) -> Circuit {
        let mut g = circuit_to_graph(c).expect("convertible");
        full_reduce(&mut g);
        let out = extract_circuit(&g)
            .unwrap_or_else(|e| panic!("extraction failed: {e}\ncircuit:\n{c}\ngraph: {g:?}"));
        assert!(
            circuits_equivalent(c, &out, 1e-7),
            "round trip changed semantics\noriginal:\n{c}\nextracted:\n{out}"
        );
        out
    }

    #[test]
    fn extract_empty() {
        let c = Circuit::new(2);
        check_round_trip(&c);
    }

    #[test]
    fn extract_single_gates() {
        for gate in [Gate::H, Gate::S, Gate::T, Gate::Z, Gate::X, Gate::RZ(0.7), Gate::RX(0.4)] {
            let mut c = Circuit::new(1);
            c.push(gate, &[0]);
            check_round_trip(&c);
        }
    }

    #[test]
    fn extract_cx_and_cz() {
        for gate in [Gate::CX, Gate::CZ] {
            let mut c = Circuit::new(2);
            c.push(gate.clone(), &[0, 1]);
            check_round_trip(&c);
            let mut c = Circuit::new(2);
            c.push(gate, &[1, 0]);
            check_round_trip(&c);
        }
    }

    #[test]
    fn extract_swap() {
        let mut c = Circuit::new(2);
        c.push(Gate::Swap, &[0, 1]);
        check_round_trip(&c);
    }

    #[test]
    fn extract_bell_and_ghz() {
        check_round_trip(&generators::ghz(2));
        check_round_trip(&generators::ghz(3));
        check_round_trip(&generators::ghz(4));
    }

    #[test]
    fn extract_bell_prep_fig4() {
        check_round_trip(&generators::bell_pair_prep());
    }

    #[test]
    fn extract_t_ladder() {
        let mut c = Circuit::new(2);
        c.push(Gate::T, &[0])
            .push(Gate::CX, &[0, 1])
            .push(Gate::T, &[1])
            .push(Gate::CX, &[0, 1])
            .push(Gate::Tdg, &[0])
            .push(Gate::H, &[1]);
        check_round_trip(&c);
    }

    #[test]
    fn extract_random_2q() {
        for seed in 0..30u64 {
            let c = generators::random_circuit(2, 12, seed);
            check_round_trip(&c);
        }
    }

    #[test]
    fn extract_random_3q() {
        for seed in 0..20u64 {
            let c = generators::random_circuit(3, 16, seed + 100);
            check_round_trip(&c);
        }
    }

    #[test]
    fn extract_random_clifford_t_4q() {
        for seed in 0..10u64 {
            let c = generators::random_clifford_t(4, 24, 0.25, seed + 7);
            check_round_trip(&c);
        }
    }

    #[test]
    fn extract_qft3() {
        check_round_trip(&generators::qft(3));
    }

    #[test]
    fn extract_after_simplify_reduces_gates() {
        // A circuit with heavy redundancy should extract smaller.
        let mut c = Circuit::new(2);
        for _ in 0..6 {
            c.push(Gate::H, &[0]).push(Gate::H, &[0]);
            c.push(Gate::CX, &[0, 1]).push(Gate::CX, &[0, 1]);
            c.push(Gate::S, &[1]).push(Gate::Sdg, &[1]);
        }
        let out = check_round_trip(&c);
        assert!(
            out.len() < c.len() / 2,
            "no reduction: {} -> {}",
            c.len(),
            out.len()
        );
    }

    #[test]
    fn boundary_mismatch_detected() {
        let mut g = ZxGraph::new();
        let i = g.add_vertex(crate::graph::VertexKind::Boundary);
        g.set_input(i);
        assert_eq!(
            extract_circuit(&g).unwrap_err(),
            ExtractError::BoundaryMismatch
        );
    }
}

//! ZX-diagram graph structure.
//!
//! Diagrams are kept **graph-like** (the normal form of Duncan–Kissinger–
//! Perdrix–van de Wetering): all interior spiders are Z spiders, connected
//! by Hadamard edges; boundary vertices mark circuit inputs/outputs and
//! attach with simple or Hadamard wires. X spiders appear only transiently
//! during conversion and are immediately color-changed.

use crate::phase::Phase;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a vertex in a [`ZxGraph`].
pub type Vertex = usize;

/// The kind of a ZX vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VertexKind {
    /// Circuit boundary (input or output); carries no phase.
    Boundary,
    /// Z (green) spider with a phase.
    Z(Phase),
    /// X (red) spider with a phase (only used mid-conversion).
    X(Phase),
}

impl VertexKind {
    /// The spider phase; boundaries report zero.
    pub fn phase(&self) -> Phase {
        match self {
            VertexKind::Boundary => Phase::ZERO,
            VertexKind::Z(p) | VertexKind::X(p) => *p,
        }
    }

    /// `true` for a Z spider.
    pub fn is_z(&self) -> bool {
        matches!(self, VertexKind::Z(_))
    }

    /// `true` for an X spider.
    pub fn is_x(&self) -> bool {
        matches!(self, VertexKind::X(_))
    }

    /// `true` for a boundary vertex.
    pub fn is_boundary(&self) -> bool {
        matches!(self, VertexKind::Boundary)
    }
}

/// The kind of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Plain wire (identity).
    Simple,
    /// Hadamard wire.
    Hadamard,
}

impl EdgeKind {
    /// The "exclusive or" of stacking two wires of these kinds in series.
    pub fn compose(self, other: EdgeKind) -> EdgeKind {
        if self == other {
            EdgeKind::Simple
        } else {
            EdgeKind::Hadamard
        }
    }
}

/// A ZX diagram with boundary ordering.
///
/// Vertices live in a slab; removal leaves holes (`None`) so vertex ids
/// stay stable across rewrites. At most one edge exists between any pair of
/// vertices — parallel-edge resolution (Hopf law and Hadamard-pair
/// cancellation) happens in [`ZxGraph::add_edge_smart`].
#[derive(Clone)]
pub struct ZxGraph {
    kinds: Vec<Option<VertexKind>>,
    adj: Vec<BTreeMap<Vertex, EdgeKind>>,
    inputs: Vec<Vertex>,
    outputs: Vec<Vertex>,
    /// Scalar bookkeeping: power of √2 and accumulated phase. EPOC ignores
    /// global scalars semantically but tracks the √2-power for debugging.
    pub(crate) sqrt2_power: i64,
}

impl ZxGraph {
    /// Creates an empty diagram.
    pub fn new() -> Self {
        Self {
            kinds: Vec::new(),
            adj: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            sqrt2_power: 0,
        }
    }

    /// Adds a vertex of the given kind, returning its id.
    pub fn add_vertex(&mut self, kind: VertexKind) -> Vertex {
        self.kinds.push(Some(kind));
        self.adj.push(BTreeMap::new());
        self.kinds.len() - 1
    }

    /// Registers a vertex as the next circuit input.
    ///
    /// # Panics
    ///
    /// Panics if the vertex does not exist.
    pub fn set_input(&mut self, v: Vertex) {
        assert!(self.exists(v), "no such vertex {v}");
        self.inputs.push(v);
    }

    /// Registers a vertex as the next circuit output.
    ///
    /// # Panics
    ///
    /// Panics if the vertex does not exist.
    pub fn set_output(&mut self, v: Vertex) {
        assert!(self.exists(v), "no such vertex {v}");
        self.outputs.push(v);
    }

    /// The input boundary vertices in qubit order.
    pub fn inputs(&self) -> &[Vertex] {
        &self.inputs
    }

    /// The output boundary vertices in qubit order.
    pub fn outputs(&self) -> &[Vertex] {
        &self.outputs
    }

    /// `true` when the vertex id refers to a live vertex.
    pub fn exists(&self, v: Vertex) -> bool {
        v < self.kinds.len() && self.kinds[v].is_some()
    }

    /// The vertex kind.
    ///
    /// # Panics
    ///
    /// Panics if the vertex was removed or never existed.
    pub fn kind(&self, v: Vertex) -> VertexKind {
        self.kinds[v].expect("vertex was removed")
    }

    /// Overwrites a vertex kind (e.g. phase update).
    ///
    /// # Panics
    ///
    /// Panics if the vertex does not exist.
    pub fn set_kind(&mut self, v: Vertex, kind: VertexKind) {
        assert!(self.exists(v), "no such vertex {v}");
        self.kinds[v] = Some(kind);
    }

    /// Adds `delta` to the phase of spider `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is a boundary or does not exist.
    pub fn add_phase(&mut self, v: Vertex, delta: Phase) {
        let k = self.kind(v);
        let new = match k {
            VertexKind::Z(p) => VertexKind::Z(p + delta),
            VertexKind::X(p) => VertexKind::X(p + delta),
            VertexKind::Boundary => panic!("cannot add phase to boundary"),
        };
        self.kinds[v] = Some(new);
    }

    /// Number of live vertices.
    pub fn vertex_count(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_some()).count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|m| m.len()).sum::<usize>() / 2
    }

    /// Iterates over live vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.kinds
            .iter()
            .enumerate()
            .filter_map(|(i, k)| k.is_some().then_some(i))
    }

    /// All edges as `(smaller, larger, kind)` triples.
    pub fn edges(&self) -> Vec<(Vertex, Vertex, EdgeKind)> {
        let mut out = Vec::new();
        for v in self.vertices() {
            for (&w, &k) in &self.adj[v] {
                if v < w {
                    out.push((v, w, k));
                }
            }
        }
        out
    }

    /// Neighbors of a vertex with edge kinds.
    ///
    /// # Panics
    ///
    /// Panics if the vertex does not exist.
    pub fn neighbors(&self, v: Vertex) -> impl Iterator<Item = (Vertex, EdgeKind)> + '_ {
        assert!(self.exists(v), "no such vertex {v}");
        self.adj[v].iter().map(|(&w, &k)| (w, k))
    }

    /// Vertex degree.
    pub fn degree(&self, v: Vertex) -> usize {
        self.adj[v].len()
    }

    /// The edge kind between two vertices, if any.
    pub fn edge_kind(&self, a: Vertex, b: Vertex) -> Option<EdgeKind> {
        self.adj.get(a).and_then(|m| m.get(&b).copied())
    }

    /// `true` when an edge connects `a` and `b`.
    pub fn connected(&self, a: Vertex, b: Vertex) -> bool {
        self.edge_kind(a, b).is_some()
    }

    /// Inserts an edge, replacing any existing edge between the endpoints.
    ///
    /// Use [`ZxGraph::add_edge_smart`] during rewriting — this method is the
    /// raw primitive for construction.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or missing endpoints.
    pub fn add_edge(&mut self, a: Vertex, b: Vertex, kind: EdgeKind) {
        assert!(a != b, "self-loops must go through add_edge_smart");
        assert!(self.exists(a) && self.exists(b), "missing endpoint");
        self.adj[a].insert(b, kind);
        self.adj[b].insert(a, kind);
    }

    /// Removes the edge between `a` and `b` if present.
    pub fn remove_edge(&mut self, a: Vertex, b: Vertex) {
        if a < self.adj.len() {
            self.adj[a].remove(&b);
        }
        if b < self.adj.len() {
            self.adj[b].remove(&a);
        }
    }

    /// Removes a vertex and all incident edges.
    pub fn remove_vertex(&mut self, v: Vertex) {
        if !self.exists(v) {
            return;
        }
        let neighbors: Vec<Vertex> = self.adj[v].keys().copied().collect();
        for w in neighbors {
            self.adj[w].remove(&v);
        }
        self.adj[v].clear();
        self.kinds[v] = None;
    }

    /// Adds an edge between Z spiders with parallel-edge and self-loop
    /// resolution, assuming a graph-like diagram:
    ///
    /// * two parallel **Hadamard** edges between Z spiders cancel (Hopf);
    /// * a parallel Hadamard + simple pair leaves a simple edge and π on
    ///   one spider — resolved as per the Hopf law variant;
    /// * a **Hadamard self-loop** adds π to the spider; a simple self-loop
    ///   vanishes.
    ///
    /// Boundary endpoints fall back to plain [`ZxGraph::add_edge`]
    /// semantics (replace).
    pub fn add_edge_smart(&mut self, a: Vertex, b: Vertex, kind: EdgeKind) {
        if a == b {
            match kind {
                // Z spider with a Hadamard self-loop = spider with +π phase
                // (and a scalar). Simple self-loop is just a scalar.
                EdgeKind::Hadamard => {
                    self.add_phase(a, Phase::PI);
                    self.sqrt2_power -= 1;
                }
                EdgeKind::Simple => {
                    self.sqrt2_power += 1;
                }
            }
            return;
        }
        let a_spider = !self.kind(a).is_boundary();
        let b_spider = !self.kind(b).is_boundary();
        match self.edge_kind(a, b) {
            None => self.add_edge(a, b, kind),
            Some(existing) => {
                if !(a_spider && b_spider) {
                    // Boundary edges cannot be parallel in valid diagrams;
                    // treat as wire composition.
                    self.add_edge(a, b, existing.compose(kind));
                    return;
                }
                match (existing, kind) {
                    // Hopf: two H-edges between Z spiders cancel.
                    (EdgeKind::Hadamard, EdgeKind::Hadamard) => {
                        self.remove_edge(a, b);
                        self.sqrt2_power -= 2;
                    }
                    // Two simple edges between Z spiders are idempotent
                    // (δ∘δ = δ): keep a single simple edge — the spiders
                    // stay connected and a later fusion merges them.
                    (EdgeKind::Simple, EdgeKind::Simple) => {}
                    // Simple + Hadamard: keep both? In graph-like diagrams
                    // simple Z-Z edges get fused away before this matters;
                    // the sound resolution is to fuse later. Keep the
                    // Hadamard edge and leave the simple edge for fusion by
                    // storing π-phase trick is NOT sound, so: keep simple
                    // (fusion will merge the spiders and re-route).
                    (EdgeKind::Simple, EdgeKind::Hadamard)
                    | (EdgeKind::Hadamard, EdgeKind::Simple) => {
                        // Defer: mark as simple so spider fusion merges the
                        // two spiders; the Hadamard edge then becomes a
                        // self-loop handled by `add_edge_smart` (π phase).
                        // To keep single-edge storage we emulate the fusion
                        // eagerly here: merging is the caller's job, so we
                        // store Simple and add π + H-self-loop bookkeeping.
                        // This case cannot arise from our conversion and
                        // rewrite pipeline; assert to catch misuse.
                        panic!("mixed parallel simple+Hadamard edge between spiders: fuse first");
                    }
                }
            }
        }
    }

    /// Compacts removed vertices away, renumbering; returns the old→new map.
    pub fn compact(&mut self) -> Vec<Option<Vertex>> {
        let mut map: Vec<Option<Vertex>> = vec![None; self.kinds.len()];
        let mut kinds = Vec::new();
        let mut adj = Vec::new();
        for (old, k) in self.kinds.iter().enumerate() {
            if let Some(kind) = k {
                map[old] = Some(kinds.len());
                kinds.push(Some(*kind));
                adj.push(BTreeMap::new());
            }
        }
        for (old, m) in self.adj.iter().enumerate() {
            if let Some(new) = map[old] {
                for (&w, &kind) in m {
                    let nw = map[w].expect("edge to removed vertex");
                    adj[new].insert(nw, kind);
                }
            }
        }
        self.kinds = kinds;
        self.adj = adj;
        self.inputs = self
            .inputs
            .iter()
            .map(|&v| map[v].expect("input removed"))
            .collect();
        self.outputs = self
            .outputs
            .iter()
            .map(|&v| map[v].expect("output removed"))
            .collect();
        map
    }

    /// Count of interior (non-boundary) spiders.
    pub fn spider_count(&self) -> usize {
        self.vertices()
            .filter(|&v| !self.kind(v).is_boundary())
            .count()
    }

    /// Count of spiders with non-Clifford phase.
    pub fn t_count(&self) -> usize {
        self.vertices()
            .filter(|&v| match self.kind(v) {
                VertexKind::Z(p) | VertexKind::X(p) => !p.is_clifford(),
                VertexKind::Boundary => false,
            })
            .count()
    }
}

impl Default for ZxGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ZxGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ZxGraph({} vertices, {} edges, {} inputs, {} outputs)",
            self.vertex_count(),
            self.edge_count(),
            self.inputs.len(),
            self.outputs.len()
        )?;
        for v in self.vertices() {
            let kind = match self.kind(v) {
                VertexKind::Boundary => "B".to_string(),
                VertexKind::Z(p) => format!("Z({p})"),
                VertexKind::X(p) => format!("X({p})"),
            };
            let nbrs: Vec<String> = self
                .neighbors(v)
                .map(|(w, k)| {
                    format!("{}{w}", if k == EdgeKind::Hadamard { "~" } else { "-" })
                })
                .collect();
            writeln!(f, "  {v}: {kind} [{}]", nbrs.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_remove_vertices() {
        let mut g = ZxGraph::new();
        let a = g.add_vertex(VertexKind::Z(Phase::ZERO));
        let b = g.add_vertex(VertexKind::Z(Phase::PI));
        let c = g.add_vertex(VertexKind::Boundary);
        g.add_edge(a, b, EdgeKind::Hadamard);
        g.add_edge(b, c, EdgeKind::Simple);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        g.remove_vertex(b);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.exists(b));
        assert!(g.exists(a));
    }

    #[test]
    fn hopf_cancels_parallel_hadamard() {
        let mut g = ZxGraph::new();
        let a = g.add_vertex(VertexKind::Z(Phase::ZERO));
        let b = g.add_vertex(VertexKind::Z(Phase::ZERO));
        g.add_edge_smart(a, b, EdgeKind::Hadamard);
        assert!(g.connected(a, b));
        g.add_edge_smart(a, b, EdgeKind::Hadamard);
        assert!(!g.connected(a, b));
    }

    #[test]
    fn hadamard_self_loop_adds_pi() {
        let mut g = ZxGraph::new();
        let a = g.add_vertex(VertexKind::Z(Phase::ZERO));
        g.add_edge_smart(a, a, EdgeKind::Hadamard);
        assert!(g.kind(a).phase().is_pi());
    }

    #[test]
    fn phase_accumulates() {
        let mut g = ZxGraph::new();
        let a = g.add_vertex(VertexKind::Z(Phase::from_radians(0.3)));
        g.add_phase(a, Phase::from_radians(0.4));
        assert!((g.kind(a).phase().radians() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn compact_renumbers() {
        let mut g = ZxGraph::new();
        let i = g.add_vertex(VertexKind::Boundary);
        let s1 = g.add_vertex(VertexKind::Z(Phase::ZERO));
        let s2 = g.add_vertex(VertexKind::Z(Phase::PI));
        let o = g.add_vertex(VertexKind::Boundary);
        g.set_input(i);
        g.set_output(o);
        g.add_edge(i, s1, EdgeKind::Simple);
        g.add_edge(s1, s2, EdgeKind::Hadamard);
        g.add_edge(s2, o, EdgeKind::Simple);
        g.remove_vertex(s1);
        g.add_edge(i, s2, EdgeKind::Simple);
        let map = g.compact();
        assert_eq!(g.vertex_count(), 3);
        assert!(map[s1].is_none());
        assert_eq!(g.inputs().len(), 1);
        assert_eq!(g.outputs().len(), 1);
        let ni = g.inputs()[0];
        assert!(g.kind(ni).is_boundary());
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn edge_kind_compose() {
        assert_eq!(EdgeKind::Simple.compose(EdgeKind::Hadamard), EdgeKind::Hadamard);
        assert_eq!(EdgeKind::Hadamard.compose(EdgeKind::Hadamard), EdgeKind::Simple);
        assert_eq!(EdgeKind::Simple.compose(EdgeKind::Simple), EdgeKind::Simple);
    }

    #[test]
    fn t_count_tracks_non_clifford() {
        let mut g = ZxGraph::new();
        g.add_vertex(VertexKind::Z(Phase::from_radians(std::f64::consts::FRAC_PI_4)));
        g.add_vertex(VertexKind::Z(Phase::from_radians(std::f64::consts::FRAC_PI_2)));
        g.add_vertex(VertexKind::Boundary);
        assert_eq!(g.t_count(), 1);
        assert_eq!(g.spider_count(), 2);
    }

    #[test]
    #[should_panic(expected = "fuse first")]
    fn mixed_parallel_edge_panics() {
        let mut g = ZxGraph::new();
        let a = g.add_vertex(VertexKind::Z(Phase::ZERO));
        let b = g.add_vertex(VertexKind::Z(Phase::ZERO));
        g.add_edge_smart(a, b, EdgeKind::Simple);
        g.add_edge_smart(a, b, EdgeKind::Hadamard);
    }
}

#[cfg(test)]
mod parallel_simple_edge_tests {
    use super::*;

    /// Regression for the code-review finding: parallel simple Z–Z edges
    /// are idempotent (δ∘δ = δ) — the spiders must stay connected.
    #[test]
    fn parallel_simple_edges_stay_connected() {
        let mut g = ZxGraph::new();
        let a = g.add_vertex(VertexKind::Z(Phase::ZERO));
        let b = g.add_vertex(VertexKind::Z(Phase::PI));
        g.add_edge_smart(a, b, EdgeKind::Simple);
        g.add_edge_smart(a, b, EdgeKind::Simple);
        assert_eq!(g.edge_kind(a, b), Some(EdgeKind::Simple));
    }
}

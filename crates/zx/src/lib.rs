//! # epoc-zx — ZX-calculus engine for the EPOC pulse compiler
//!
//! A from-scratch reimplementation of the PyZX functionality the paper's
//! §3.1 depends on:
//!
//! * [`ZxGraph`] — graph-like ZX diagrams (Z spiders + Hadamard edges);
//! * [`circuit_to_graph`] / [`lower_for_zx`] — conversion from the circuit
//!   IR, with verified gate lowerings;
//! * [`rules`] — sound rewrite rules (spider fusion, identity removal,
//!   local complementation, pivoting), each checked against the tensor
//!   semantics in [`tensor`];
//! * [`simplify`] — `interior_clifford_simp` / `full_reduce` strategies;
//! * [`extract_circuit`] — frontier-based circuit extraction with GF(2)
//!   Gaussian elimination;
//! * [`zx_optimize`] — the end-to-end graph-based depth-optimization pass
//!   with verification and graceful fallback.
//!
//! ## Example
//!
//! ```
//! use epoc_circuit::{Circuit, Gate};
//! use epoc_zx::zx_optimize;
//!
//! let mut c = Circuit::new(2);
//! c.push(Gate::H, &[0]).push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
//! let r = zx_optimize(&c);
//! assert!(r.depth_after <= r.depth_before);
//! ```

#![warn(missing_docs)]

mod convert;
mod extract;
mod graph;
mod optimize;
mod phase;
pub mod rules;
pub mod simplify;
pub mod tensor;

pub use convert::{circuit_to_graph, lower_for_zx, ConvertError};
pub use extract::{extract_circuit, ExtractError};
pub use graph::{EdgeKind, Vertex, VertexKind, ZxGraph};
pub use optimize::{latency_cost, peephole_cleanup, zx_optimize, ZxOptResult};
pub use phase::{Phase, PHASE_TOL};
pub use simplify::{full_reduce, interior_clifford_simp, pivot_boundary_simp, SimplifyStats};

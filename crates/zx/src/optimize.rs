//! Top-level graph-based depth optimization (the paper's §3.1).
//!
//! [`zx_optimize`] runs the full pipeline — lower → convert → simplify →
//! extract → peephole cleanup — and keeps the result only when it is both
//! semantically verified (for circuits small enough to probe) and no worse
//! in depth than the input. Falling back to the original circuit on any
//! failure makes the pass safe to apply unconditionally.

use crate::convert::circuit_to_graph;
use crate::extract::extract_circuit;
use crate::phase::Phase;
use crate::simplify::full_reduce;
use epoc_circuit::{circuits_equivalent, Circuit, Gate};

/// Outcome of [`zx_optimize`].
#[derive(Debug, Clone)]
pub struct ZxOptResult {
    /// The optimized circuit (or a clone of the input on fallback).
    pub circuit: Circuit,
    /// Rewrite rules applied to produce the kept circuit (0 on fallback:
    /// rewrites whose result was discarded do not count).
    pub rewrites: usize,
    /// Depth before optimization — of the **ZX-basis-lowered** input
    /// (`{H, RZ, CX, CZ}`), which is the fair comparison point for the
    /// extraction output and equals the input depth for circuits already
    /// in basis gates.
    pub depth_before: usize,
    /// Depth after optimization.
    pub depth_after: usize,
    /// Gate count before.
    pub gates_before: usize,
    /// Gate count after.
    pub gates_after: usize,
    /// `false` when the pipeline fell back to the input circuit.
    pub optimized: bool,
}

impl ZxOptResult {
    /// Depth reduction factor (≥ 1.0; 1.0 on fallback or no gain).
    pub fn depth_reduction(&self) -> f64 {
        if self.depth_after == 0 {
            return 1.0;
        }
        self.depth_before as f64 / self.depth_after as f64
    }
}

/// Maximum register size for which the optimized circuit is re-verified
/// against the input by statevector probing.
const VERIFY_QUBIT_LIMIT: usize = 10;

/// Optimizes a circuit through the ZX pipeline, returning the input
/// unchanged (flagged `optimized: false`) when conversion, extraction, or
/// verification fails or the result is deeper than the input.
pub fn zx_optimize(circuit: &Circuit) -> ZxOptResult {
    let _span = epoc_rt::telemetry::span("zx", "zx_optimize");
    let gates_before = circuit.len();
    // On fallback the pass is a no-op, so before/after depths coincide.
    let fallback = |c: &Circuit| ZxOptResult {
        circuit: c.clone(),
        rewrites: 0,
        depth_before: c.depth(),
        depth_after: c.depth(),
        gates_before,
        gates_after: gates_before,
        optimized: false,
    };

    let Ok(lowered) = crate::convert::lower_for_zx(circuit) else {
        return fallback(circuit);
    };
    let depth_before = lowered.depth();
    let Ok(mut graph) = circuit_to_graph(circuit) else {
        return fallback(circuit);
    };
    let stats = full_reduce(&mut graph);
    epoc_rt::telemetry::counter_add("zx.fusions", stats.fusions as u64);
    epoc_rt::telemetry::counter_add("zx.identities", stats.identities as u64);
    epoc_rt::telemetry::counter_add("zx.local_complements", stats.local_complements as u64);
    epoc_rt::telemetry::counter_add("zx.pivots", stats.pivots as u64);
    let Ok(extracted) = extract_circuit(&graph) else {
        return fallback(circuit);
    };
    let cleaned = peephole_cleanup(&extracted);

    if circuit.n_qubits() <= VERIFY_QUBIT_LIMIT
        && !circuits_equivalent(circuit, &cleaned, 1e-6)
    {
        return fallback(circuit);
    }
    // Keep the rewrite only when it does not increase the *latency-like*
    // cost: the critical path under pulse-realistic gate weights (virtual
    // Z rotations free, one unit per single-qubit pulse, ~8.5 units per
    // entangling gate — the CX/SX duration ratio of transmon hardware).
    // This subsumes a bare depth check and catches both the CX inflation
    // Gaussian-elimination extraction can cause and extra physical
    // single-qubit gates.
    // Require strict improvement (or equal cost with strictly fewer
    // gates): a cost-neutral rewrite still reshuffles the gate stream and
    // can degrade downstream partitioning, so it is not worth keeping.
    let (cost_new, cost_old) = (latency_cost(&cleaned), latency_cost(&lowered));
    let improves = cost_new < cost_old
        || (cost_new == cost_old && cleaned.len() < lowered.len());
    if !improves {
        return fallback(circuit);
    }
    ZxOptResult {
        depth_after: cleaned.depth(),
        gates_after: cleaned.len(),
        circuit: cleaned,
        rewrites: stats.total(),
        depth_before,
        gates_before,
        optimized: true,
    }
}

/// Latency-like cost of a circuit: critical path with virtual rotations
/// free, single-qubit physical pulses at weight 1 and entangling gates at
/// the transmon CX/SX duration ratio.
pub fn latency_cost(circuit: &Circuit) -> f64 {
    const TWO_QUBIT_WEIGHT: f64 = 8.45; // ≈ 300 ns / 35.5 ns
    let ops = circuit.ops();
    let dag = epoc_circuit::CircuitDag::new(circuit);
    dag.critical_path(|i| match &ops[i].gate {
        // Only single-qubit diagonals are virtual frame updates; CZ & co
        // are physical entangling pulses despite being diagonal.
        g if g.arity() == 1 && g.is_diagonal() => 0.0,
        g if g.arity() == 1 => 1.0,
        Gate::Swap => 3.0 * TWO_QUBIT_WEIGHT,
        g if g.arity() == 2 => TWO_QUBIT_WEIGHT,
        _ => 6.0 * TWO_QUBIT_WEIGHT,
    })
}

/// Local cleanup on the extracted gate stream:
///
/// * adjacent `H·H` on the same qubit cancel;
/// * adjacent `RZ·RZ` on the same qubit merge (dropping zero angles);
/// * adjacent identical `CZ` / `CX` / `Swap` pairs cancel;
/// * zero-angle rotations are dropped.
pub fn peephole_cleanup(circuit: &Circuit) -> Circuit {
    let mut ops: Vec<(Gate, Vec<usize>)> = Vec::new();
    for op in circuit.ops() {
        let gate = op.gate.clone();
        let qubits = op.qubits.clone();
        // Drop zero rotations outright.
        if let Gate::RZ(t) | Gate::RX(t) | Gate::RY(t) | Gate::Phase(t) = gate {
            if Phase::from_radians(t).is_zero() {
                continue;
            }
        }
        // Find the previous op touching any of these qubits.
        let prev = ops
            .iter()
            .rposition(|(_, qs)| qs.iter().any(|q| qubits.contains(q)));
        if let Some(p) = prev {
            let (pg, pq) = &ops[p];
            if *pq == qubits {
                match (pg, &gate) {
                    (Gate::H, Gate::H) => {
                        ops.remove(p);
                        continue;
                    }
                    (Gate::CZ, Gate::CZ) | (Gate::Swap, Gate::Swap) | (Gate::CX, Gate::CX) => {
                        ops.remove(p);
                        continue;
                    }
                    (Gate::RZ(a), Gate::RZ(b)) => {
                        let sum = Phase::from_radians(a + b);
                        if sum.is_zero() {
                            ops.remove(p);
                        } else {
                            ops[p].0 = Gate::RZ(sum.radians());
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            // CZ is qubit-order symmetric.
            if matches!((pg, &gate), (Gate::CZ, Gate::CZ) | (Gate::Swap, Gate::Swap))
                && pq.len() == 2
                && qubits.len() == 2
                && pq[0] == qubits[1]
                && pq[1] == qubits[0]
            {
                ops.remove(p);
                continue;
            }
        }
        ops.push((gate, qubits));
    }
    let mut out = Circuit::new(circuit.n_qubits());
    for (g, qs) in ops {
        out.push(g, &qs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::generators;

    #[test]
    fn optimize_preserves_and_reports() {
        let c = generators::random_clifford_t(3, 40, 0.2, 11);
        let r = zx_optimize(&c);
        assert!(circuits_equivalent(&c, &r.circuit, 1e-6));
        assert!(r.depth_after <= r.depth_before);
        assert!(r.depth_reduction() >= 1.0);
    }

    #[test]
    fn optimize_reduces_redundant_circuit() {
        let mut c = Circuit::new(2);
        for _ in 0..5 {
            c.push(Gate::H, &[0]).push(Gate::H, &[0]);
            c.push(Gate::CX, &[0, 1]).push(Gate::CX, &[0, 1]);
            c.push(Gate::T, &[1]).push(Gate::Tdg, &[1]);
        }
        let r = zx_optimize(&c);
        assert!(r.optimized);
        assert!(r.rewrites > 0, "an optimized circuit implies rewrites fired");
        assert!(
            r.depth_after < r.depth_before / 2,
            "depth {} -> {}",
            r.depth_before,
            r.depth_after
        );
    }

    #[test]
    fn optimize_falls_back_on_opaque_blocks() {
        let mut c = Circuit::new(2);
        c.push(Gate::unitary("blk", Gate::CX.unitary_matrix()), &[0, 1]);
        let r = zx_optimize(&c);
        assert!(!r.optimized);
        assert_eq!(r.circuit.len(), 1);
    }

    #[test]
    fn optimize_bell_prep_reduces_depth() {
        // The paper's Figure 4 example: depth must drop.
        let c = generators::bell_pair_prep();
        let r = zx_optimize(&c);
        assert!(circuits_equivalent(&c, &r.circuit, 1e-6));
        assert!(
            r.depth_after < r.depth_before,
            "depth {} -> {}",
            r.depth_before,
            r.depth_after
        );
    }

    #[test]
    fn peephole_cancels_pairs() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0])
            .push(Gate::H, &[0])
            .push(Gate::CZ, &[0, 1])
            .push(Gate::CZ, &[1, 0])
            .push(Gate::RZ(0.4), &[1])
            .push(Gate::RZ(-0.4), &[1]);
        let out = peephole_cleanup(&c);
        assert!(out.is_empty(), "{out}");
    }

    #[test]
    fn peephole_merges_rz() {
        let mut c = Circuit::new(1);
        c.push(Gate::RZ(0.3), &[0]).push(Gate::RZ(0.4), &[0]);
        let out = peephole_cleanup(&c);
        assert_eq!(out.len(), 1);
        match out.ops()[0].gate {
            Gate::RZ(t) => assert!((t - 0.7).abs() < 1e-12),
            ref g => panic!("unexpected {g}"),
        }
    }

    #[test]
    fn peephole_respects_interleaving() {
        // H q0, CX(0,1), H q0 must NOT cancel the two H's.
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0])
            .push(Gate::CX, &[0, 1])
            .push(Gate::H, &[0]);
        let out = peephole_cleanup(&c);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn optimize_benchmarks_depth_reduction_sane() {
        for b in generators::benchmark_suite() {
            if b.circuit.n_qubits() > 8 {
                continue;
            }
            let r = zx_optimize(&b.circuit);
            assert!(
                r.depth_after <= r.depth_before,
                "{} got deeper",
                b.name
            );
        }
    }
}

//! Spider phases.
//!
//! Phases are angles mod 2π. Circuits carry arbitrary real rotation angles,
//! so [`Phase`] wraps an `f64` (radians, normalized to `[0, 2π)`) and
//! provides the tolerance-based classifications the rewrite rules need:
//! Pauli phases (0 or π) and proper Clifford phases (±π/2).

use std::f64::consts::{FRAC_PI_2, PI};
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// Numerical tolerance for classifying phases.
pub const PHASE_TOL: f64 = 1e-9;

const TWO_PI: f64 = 2.0 * PI;

/// An angle mod 2π, stored in radians within `[0, 2π)`.
///
/// # Examples
///
/// ```
/// use epoc_zx::Phase;
/// use std::f64::consts::PI;
///
/// let p = Phase::from_radians(3.0 * PI);
/// assert!(p.is_pi());
/// assert!((Phase::from_radians(-PI / 2.0) + Phase::from_radians(PI / 2.0)).is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase(f64);

impl Phase {
    /// The zero phase.
    pub const ZERO: Phase = Phase(0.0);
    /// The π phase.
    pub const PI: Phase = Phase(PI);

    /// Creates a phase from radians (normalized mod 2π).
    pub fn from_radians(r: f64) -> Self {
        let mut v = r.rem_euclid(TWO_PI);
        // Snap values within tolerance of 2π down to 0.
        if (TWO_PI - v).abs() < PHASE_TOL {
            v = 0.0;
        }
        Phase(v)
    }

    /// The phase in radians, in `[0, 2π)`.
    pub fn radians(self) -> f64 {
        self.0
    }

    /// π/2 phase.
    pub fn half_pi() -> Self {
        Phase(FRAC_PI_2)
    }

    /// 3π/2 phase (i.e. −π/2).
    pub fn neg_half_pi() -> Self {
        Phase(3.0 * FRAC_PI_2)
    }

    /// `true` when the phase is 0 (mod 2π) within tolerance.
    pub fn is_zero(self) -> bool {
        self.0 < PHASE_TOL || (TWO_PI - self.0) < PHASE_TOL
    }

    /// `true` when the phase is π within tolerance.
    pub fn is_pi(self) -> bool {
        (self.0 - PI).abs() < PHASE_TOL
    }

    /// `true` for a Pauli phase: 0 or π.
    pub fn is_pauli(self) -> bool {
        self.is_zero() || self.is_pi()
    }

    /// `true` for ±π/2 (a *proper* Clifford phase).
    pub fn is_proper_clifford(self) -> bool {
        (self.0 - FRAC_PI_2).abs() < PHASE_TOL || (self.0 - 3.0 * FRAC_PI_2).abs() < PHASE_TOL
    }

    /// `true` for any multiple of π/2 (Clifford phase).
    pub fn is_clifford(self) -> bool {
        self.is_pauli() || self.is_proper_clifford()
    }

    /// `true` when within tolerance of `other`.
    pub fn approx_eq(self, other: Phase) -> bool {
        let d = (self.0 - other.0).abs();
        d < PHASE_TOL || (TWO_PI - d) < PHASE_TOL
    }
}

impl Default for Phase {
    fn default() -> Self {
        Phase::ZERO
    }
}

impl Add for Phase {
    type Output = Phase;
    fn add(self, rhs: Phase) -> Phase {
        Phase::from_radians(self.0 + rhs.0)
    }
}

impl Sub for Phase {
    type Output = Phase;
    fn sub(self, rhs: Phase) -> Phase {
        Phase::from_radians(self.0 - rhs.0)
    }
}

impl Neg for Phase {
    type Output = Phase;
    fn neg(self) -> Phase {
        Phase::from_radians(-self.0)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Pretty-print common multiples of π/4.
        let quarters = self.0 / (PI / 4.0);
        let q = quarters.round();
        if (quarters - q).abs() < 1e-6 {
            match q as i64 {
                0 => write!(f, "0"),
                1 => write!(f, "π/4"),
                2 => write!(f, "π/2"),
                3 => write!(f, "3π/4"),
                4 => write!(f, "π"),
                5 => write!(f, "5π/4"),
                6 => write!(f, "3π/2"),
                7 => write!(f, "7π/4"),
                _ => write!(f, "{:.4}", self.0),
            }
        } else {
            write!(f, "{:.4}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_wraps() {
        assert!(Phase::from_radians(TWO_PI).is_zero());
        assert!(Phase::from_radians(-PI).is_pi());
        assert!(Phase::from_radians(5.0 * PI).is_pi());
        assert!((Phase::from_radians(-FRAC_PI_2).radians() - 3.0 * FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn classification() {
        assert!(Phase::ZERO.is_pauli());
        assert!(Phase::PI.is_pauli());
        assert!(Phase::half_pi().is_proper_clifford());
        assert!(Phase::neg_half_pi().is_proper_clifford());
        assert!(!Phase::half_pi().is_pauli());
        assert!(Phase::half_pi().is_clifford());
        assert!(!Phase::from_radians(PI / 4.0).is_clifford());
        assert!(Phase::from_radians(0.123).radians() > 0.0);
        assert!(!Phase::from_radians(0.123).is_clifford());
    }

    #[test]
    fn arithmetic_mod_two_pi() {
        let a = Phase::from_radians(1.5 * PI);
        let b = Phase::from_radians(PI);
        assert!(((a + b).radians() - 0.5 * PI).abs() < 1e-12);
        assert!((a - a).is_zero());
        assert!((-Phase::half_pi()).approx_eq(Phase::neg_half_pi()));
    }

    #[test]
    fn tolerance_snapping() {
        assert!(Phase::from_radians(TWO_PI - 1e-12).is_zero());
        assert!(Phase::from_radians(1e-12).is_zero());
        assert!(Phase::from_radians(PI + 1e-12).is_pi());
    }

    #[test]
    fn display_pretty_prints() {
        assert_eq!(Phase::ZERO.to_string(), "0");
        assert_eq!(Phase::PI.to_string(), "π");
        assert_eq!(Phase::half_pi().to_string(), "π/2");
        assert_eq!(Phase::from_radians(PI / 4.0).to_string(), "π/4");
        assert_eq!(Phase::from_radians(0.1).to_string(), "0.1000");
    }

    #[test]
    fn approx_eq_across_wrap() {
        let a = Phase::from_radians(1e-10);
        let b = Phase::from_radians(TWO_PI - 1e-10);
        assert!(a.approx_eq(b));
    }
}

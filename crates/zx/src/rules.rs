//! ZX rewrite rules on graph-like diagrams.
//!
//! Every rule is sound: it preserves the diagram's linear map up to a
//! global scalar. The test module verifies each rule against the tensor
//! evaluator on randomized diagrams.
//!
//! Implemented rules (names follow Duncan–Kissinger–Perdrix–van de
//! Wetering, "Graph-theoretic Simplification of Quantum Circuits with the
//! ZX-calculus"):
//!
//! * **spider fusion** — merge two Z spiders joined by a simple edge;
//! * **identity removal** — remove a phase-0, degree-2 Z spider;
//! * **local complementation** — remove an interior ±π/2 spider,
//!   complementing its neighborhood;
//! * **pivot** — remove an interior pair of Pauli spiders joined by a
//!   Hadamard edge, complementing between their neighbor classes;
//! * **boundary pivot** — the pivot variant for a Pauli spider touching a
//!   boundary, enabled by an identity-insertion split of the boundary wire.

use crate::graph::{EdgeKind, Vertex, VertexKind, ZxGraph};
use crate::phase::Phase;

/// Merges spider `b` into spider `a`.
///
/// Requires both to be Z spiders joined by a **simple** edge. `b`'s phase
/// is added to `a`, `b`'s other edges re-attach to `a` with Hopf/self-loop
/// resolution, and `b` is removed.
///
/// Returns `false` (no change) when the precondition fails.
pub fn fuse(g: &mut ZxGraph, a: Vertex, b: Vertex) -> bool {
    if a == b || !g.exists(a) || !g.exists(b) {
        return false;
    }
    if !(g.kind(a).is_z() && g.kind(b).is_z()) {
        return false;
    }
    if g.edge_kind(a, b) != Some(EdgeKind::Simple) {
        return false;
    }
    let phase_b = g.kind(b).phase();
    g.add_phase(a, phase_b);
    let others: Vec<(Vertex, EdgeKind)> = g
        .neighbors(b)
        .filter(|&(w, _)| w != a)
        .collect();
    g.remove_vertex(b);
    for (w, kind) in others {
        if w == a {
            continue;
        }
        g.add_edge_smart(a, w, kind);
    }
    true
}

/// Removes a phase-0, degree-2 Z spider, splicing its two edges together
/// (edge kinds compose; a Hadamard pair cancels to a simple wire).
///
/// Returns `false` when the precondition fails.
pub fn remove_identity(g: &mut ZxGraph, v: Vertex) -> bool {
    if !g.exists(v) {
        return false;
    }
    match g.kind(v) {
        VertexKind::Z(p) if p.is_zero() => {}
        _ => return false,
    }
    if g.degree(v) != 2 {
        return false;
    }
    let nbrs: Vec<(Vertex, EdgeKind)> = g.neighbors(v).collect();
    let (w1, k1) = nbrs[0];
    let (w2, k2) = nbrs[1];
    let combined = k1.compose(k2);
    // Splicing must not create an unresolvable mixed parallel edge between
    // spiders, nor a parallel edge on a boundary.
    if let Some(existing) = g.edge_kind(w1, w2) {
        let both_spiders = !g.kind(w1).is_boundary() && !g.kind(w2).is_boundary();
        if !both_spiders || existing != combined {
            return false;
        }
    }
    g.remove_vertex(v);
    g.add_edge_smart(w1, w2, combined);
    true
}

/// `true` when `v` is an *interior* spider: a Z spider all of whose edges
/// are Hadamard edges to other (non-boundary) spiders.
pub fn is_interior(g: &ZxGraph, v: Vertex) -> bool {
    if !g.exists(v) || !g.kind(v).is_z() {
        return false;
    }
    g.neighbors(v)
        .all(|(w, k)| k == EdgeKind::Hadamard && !g.kind(w).is_boundary())
}

/// Local complementation at an interior ±π/2 spider `v`: removes `v`,
/// toggles every edge among its neighborhood, and subtracts `v`'s phase
/// from each neighbor.
///
/// Returns `false` when the precondition fails.
pub fn local_complement(g: &mut ZxGraph, v: Vertex) -> bool {
    if !is_interior(g, v) {
        return false;
    }
    let phase = g.kind(v).phase();
    if !phase.is_proper_clifford() {
        return false;
    }
    let nbrs: Vec<Vertex> = g.neighbors(v).map(|(w, _)| w).collect();
    // The rule is only defined on graph-like neighborhoods: a *simple*
    // edge between two neighbors (as identity-removal can create) must be
    // fused away first — toggling it would corrupt the diagram.
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.edge_kind(a, b) == Some(EdgeKind::Simple) {
                return false;
            }
        }
    }
    // Toggle all pairs.
    for i in 0..nbrs.len() {
        for j in (i + 1)..nbrs.len() {
            let (a, b) = (nbrs[i], nbrs[j]);
            if g.edge_kind(a, b) == Some(EdgeKind::Hadamard) {
                g.remove_edge(a, b);
            } else {
                g.add_edge(a, b, EdgeKind::Hadamard);
            }
        }
    }
    for &w in &nbrs {
        g.add_phase(w, -phase);
    }
    g.remove_vertex(v);
    true
}

/// Pivot about an interior Hadamard-connected pair of Pauli spiders
/// `(u, v)`: complements edges between the three neighbor classes
/// (exclusive-u, exclusive-v, common), adds π to common neighbors, adds
/// `v`'s phase to exclusive-u neighbors and `u`'s to exclusive-v, then
/// removes both.
///
/// Returns `false` when the precondition fails.
pub fn pivot(g: &mut ZxGraph, u: Vertex, v: Vertex) -> bool {
    if u == v || !is_interior(g, u) || !is_interior(g, v) {
        return false;
    }
    let pu = g.kind(u).phase();
    let pv = g.kind(v).phase();
    if !pu.is_pauli() || !pv.is_pauli() {
        return false;
    }
    if g.edge_kind(u, v) != Some(EdgeKind::Hadamard) {
        return false;
    }
    let nu: Vec<Vertex> = g.neighbors(u).map(|(w, _)| w).filter(|&w| w != v).collect();
    let nv: Vec<Vertex> = g.neighbors(v).map(|(w, _)| w).filter(|&w| w != u).collect();
    let common: Vec<Vertex> = nu.iter().copied().filter(|w| nv.contains(w)).collect();
    let only_u: Vec<Vertex> = nu.iter().copied().filter(|w| !common.contains(w)).collect();
    let only_v: Vec<Vertex> = nv.iter().copied().filter(|w| !common.contains(w)).collect();
    // Like local complementation, pivoting toggles edges between the
    // neighbor classes and is only defined when those pairs carry
    // Hadamard (or no) edges — refuse on simple edges.
    let mut all: Vec<Vertex> = Vec::new();
    all.extend_from_slice(&only_u);
    all.extend_from_slice(&only_v);
    all.extend_from_slice(&common);
    for (i, &a) in all.iter().enumerate() {
        for &b in &all[i + 1..] {
            if g.edge_kind(a, b) == Some(EdgeKind::Simple) {
                return false;
            }
        }
    }

    let mut toggle = |a: Vertex, b: Vertex| {
        if a == b {
            return;
        }
        if g.edge_kind(a, b) == Some(EdgeKind::Hadamard) {
            g.remove_edge(a, b);
        } else {
            g.add_edge(a, b, EdgeKind::Hadamard);
        }
    };
    for &a in &only_u {
        for &b in &only_v {
            toggle(a, b);
        }
    }
    for &a in &only_u {
        for &b in &common {
            toggle(a, b);
        }
    }
    for &a in &only_v {
        for &b in &common {
            toggle(a, b);
        }
    }
    for &w in &common {
        g.add_phase(w, Phase::PI);
    }
    for &w in &only_u {
        g.add_phase(w, pv);
    }
    for &w in &only_v {
        g.add_phase(w, pu);
    }
    for &w in &common {
        g.add_phase(w, pu + pv);
    }
    g.remove_vertex(u);
    g.remove_vertex(v);
    true
}

/// Boundary pivot: pivots an interior Pauli spider `u` against a Pauli
/// neighbor `v` that touches exactly one boundary, by first splitting
/// `v`'s boundary wire with a phase-0 spider (identity insertion) so the
/// ordinary [`pivot`] applies.
///
/// Each application removes one net spider, so repeated use terminates.
/// Returns `false` when the preconditions fail.
pub fn pivot_boundary(g: &mut ZxGraph, u: Vertex, v: Vertex) -> bool {
    if u == v || !is_interior(g, u) || !g.exists(v) || !g.kind(v).is_z() {
        return false;
    }
    if !g.kind(u).phase().is_pauli() || !g.kind(v).phase().is_pauli() {
        return false;
    }
    if g.edge_kind(u, v) != Some(EdgeKind::Hadamard) {
        return false;
    }
    // v: exactly one boundary neighbor; all other edges Hadamard to spiders.
    let mut boundary: Option<(Vertex, EdgeKind)> = None;
    for (w, k) in g.neighbors(v) {
        if g.kind(w).is_boundary() {
            if boundary.is_some() {
                return false;
            }
            boundary = Some((w, k));
        } else if k != EdgeKind::Hadamard {
            return false;
        }
    }
    let Some((b, kind)) = boundary else {
        return false;
    };
    // Split the boundary wire: v —H— w —(kind∘H)— b. The inserted w is a
    // phase-0 degree-2 spider, i.e. an identity (inverse of
    // remove_identity), so semantics are untouched.
    g.remove_edge(v, b);
    let w = g.add_vertex(VertexKind::Z(Phase::ZERO));
    g.add_edge(v, w, EdgeKind::Hadamard);
    g.add_edge(w, b, kind.compose(EdgeKind::Hadamard));
    if pivot(g, u, v) {
        true
    } else {
        // Undo the split so a refused pivot leaves the diagram unchanged.
        g.remove_vertex(w);
        g.add_edge(v, b, kind);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{graph_to_matrix, proportional};
    use epoc_rt::rng::StdRng;
    use epoc_rt::rng::Rng;

    /// Applies `rule` and checks the semantics is unchanged (up to scalar).
    fn check_preserves(g: &ZxGraph, rule: impl FnOnce(&mut ZxGraph) -> bool) -> bool {
        let before = graph_to_matrix(g).expect("evaluable before");
        let mut g2 = g.clone();
        let applied = rule(&mut g2);
        if !applied {
            return false;
        }
        let after = graph_to_matrix(&g2).expect("evaluable after");
        assert!(
            proportional(&before, &after, 1e-8),
            "rule changed semantics\nbefore {before:?}\nafter {after:?}\ngraph {g2:?}"
        );
        true
    }

    /// Random small graph-like diagram on `n` wires with interior structure.
    fn random_diagram(n: usize, interior: usize, seed: u64) -> ZxGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = ZxGraph::new();
        let mut spiders = Vec::new();
        // Wire scaffold.
        for _ in 0..n {
            let i = g.add_vertex(VertexKind::Boundary);
            let s = g.add_vertex(VertexKind::Z(Phase::from_radians(
                rng.gen_f64() * std::f64::consts::TAU,
            )));
            let o = g.add_vertex(VertexKind::Boundary);
            g.add_edge(i, s, EdgeKind::Simple);
            g.add_edge(s, o, EdgeKind::Simple);
            g.set_input(i);
            g.set_output(o);
            spiders.push(s);
        }
        // Interior spiders with random Hadamard wiring.
        for _ in 0..interior {
            let v = g.add_vertex(VertexKind::Z(Phase::from_radians(
                rng.gen_f64() * std::f64::consts::TAU,
            )));
            // Connect to 1-3 existing spiders.
            let k = rng.gen_range(1..=3usize.min(spiders.len()));
            for _ in 0..k {
                let w = spiders[rng.gen_range(0..spiders.len())];
                if w != v && !g.connected(v, w) {
                    g.add_edge(v, w, EdgeKind::Hadamard);
                }
            }
            spiders.push(v);
        }
        g
    }

    #[test]
    fn fusion_preserves_semantics() {
        // Chain i - a(0.3) - b(0.5) - o with simple edges.
        let mut g = ZxGraph::new();
        let i = g.add_vertex(VertexKind::Boundary);
        let a = g.add_vertex(VertexKind::Z(Phase::from_radians(0.3)));
        let b = g.add_vertex(VertexKind::Z(Phase::from_radians(0.5)));
        let o = g.add_vertex(VertexKind::Boundary);
        g.add_edge(i, a, EdgeKind::Simple);
        g.add_edge(a, b, EdgeKind::Simple);
        g.add_edge(b, o, EdgeKind::Simple);
        g.set_input(i);
        g.set_output(o);
        assert!(check_preserves(&g, |g| fuse(g, a, b)));
    }

    #[test]
    fn fusion_with_shared_neighbor_hopf() {
        // a and b both H-connected to c; fusing a,b turns the pair into a
        // double H-edge that must Hopf-cancel.
        let mut g = ZxGraph::new();
        let i = g.add_vertex(VertexKind::Boundary);
        let a = g.add_vertex(VertexKind::Z(Phase::ZERO));
        let b = g.add_vertex(VertexKind::Z(Phase::from_radians(0.7)));
        let c = g.add_vertex(VertexKind::Z(Phase::from_radians(1.1)));
        let o = g.add_vertex(VertexKind::Boundary);
        let oc = g.add_vertex(VertexKind::Boundary);
        g.add_edge(i, a, EdgeKind::Simple);
        g.add_edge(a, b, EdgeKind::Simple);
        g.add_edge(b, o, EdgeKind::Simple);
        g.add_edge(a, c, EdgeKind::Hadamard);
        g.add_edge(b, c, EdgeKind::Hadamard);
        g.add_edge(c, oc, EdgeKind::Simple);
        g.set_input(i);
        g.set_output(o);
        g.set_output(oc);
        assert!(check_preserves(&g, |g| fuse(g, a, b)));
    }

    #[test]
    fn fusion_rejects_hadamard_edge() {
        let mut g = ZxGraph::new();
        let a = g.add_vertex(VertexKind::Z(Phase::ZERO));
        let b = g.add_vertex(VertexKind::Z(Phase::ZERO));
        g.add_edge(a, b, EdgeKind::Hadamard);
        assert!(!fuse(&mut g, a, b));
    }

    #[test]
    fn identity_removal_simple() {
        let mut g = ZxGraph::new();
        let i = g.add_vertex(VertexKind::Boundary);
        let v = g.add_vertex(VertexKind::Z(Phase::ZERO));
        let w = g.add_vertex(VertexKind::Z(Phase::from_radians(0.9)));
        let o = g.add_vertex(VertexKind::Boundary);
        g.add_edge(i, v, EdgeKind::Simple);
        g.add_edge(v, w, EdgeKind::Hadamard);
        g.add_edge(w, o, EdgeKind::Simple);
        g.set_input(i);
        g.set_output(o);
        assert!(check_preserves(&g, |g| remove_identity(g, v)));
    }

    #[test]
    fn identity_removal_cancels_hadamard_pair() {
        // i -H- v -H- o: removing v leaves a simple wire.
        let mut g = ZxGraph::new();
        let i = g.add_vertex(VertexKind::Boundary);
        let v = g.add_vertex(VertexKind::Z(Phase::ZERO));
        let o = g.add_vertex(VertexKind::Boundary);
        g.add_edge(i, v, EdgeKind::Hadamard);
        g.add_edge(v, o, EdgeKind::Hadamard);
        g.set_input(i);
        g.set_output(o);
        assert!(check_preserves(&g, |g| remove_identity(g, v)));
        let mut g2 = g.clone();
        remove_identity(&mut g2, v);
        assert_eq!(g2.edge_kind(i, o), Some(EdgeKind::Simple));
    }

    #[test]
    fn identity_removal_rejects_phase() {
        let mut g = ZxGraph::new();
        let i = g.add_vertex(VertexKind::Boundary);
        let v = g.add_vertex(VertexKind::Z(Phase::PI));
        let o = g.add_vertex(VertexKind::Boundary);
        g.add_edge(i, v, EdgeKind::Simple);
        g.add_edge(v, o, EdgeKind::Simple);
        assert!(!remove_identity(&mut g, v));
    }

    #[test]
    fn local_complement_triangle() {
        // Interior ±π/2 spider v H-connected to two wire spiders that are
        // themselves H-connected: LC removes v and disconnects them.
        for phase in [Phase::half_pi(), Phase::neg_half_pi()] {
            let mut g = ZxGraph::new();
            let mut wire = Vec::new();
            for _ in 0..2 {
                let i = g.add_vertex(VertexKind::Boundary);
                let s = g.add_vertex(VertexKind::Z(Phase::from_radians(0.4)));
                let o = g.add_vertex(VertexKind::Boundary);
                g.add_edge(i, s, EdgeKind::Simple);
                g.add_edge(s, o, EdgeKind::Simple);
                g.set_input(i);
                g.set_output(o);
                wire.push(s);
            }
            let v = g.add_vertex(VertexKind::Z(phase));
            g.add_edge(v, wire[0], EdgeKind::Hadamard);
            g.add_edge(v, wire[1], EdgeKind::Hadamard);
            g.add_edge(wire[0], wire[1], EdgeKind::Hadamard);
            assert!(check_preserves(&g, |g| local_complement(g, v)));
        }
    }

    #[test]
    fn local_complement_star() {
        // v H-connected to three wire spiders, no edges among them.
        let mut g = ZxGraph::new();
        let mut wire = Vec::new();
        for _ in 0..3 {
            let i = g.add_vertex(VertexKind::Boundary);
            let s = g.add_vertex(VertexKind::Z(Phase::from_radians(0.2)));
            let o = g.add_vertex(VertexKind::Boundary);
            g.add_edge(i, s, EdgeKind::Simple);
            g.add_edge(s, o, EdgeKind::Simple);
            g.set_input(i);
            g.set_output(o);
            wire.push(s);
        }
        let v = g.add_vertex(VertexKind::Z(Phase::half_pi()));
        for &w in &wire {
            g.add_edge(v, w, EdgeKind::Hadamard);
        }
        assert!(check_preserves(&g, |g| local_complement(g, v)));
    }

    #[test]
    fn local_complement_rejects_non_clifford() {
        let mut g = random_diagram(2, 1, 3);
        let interior: Vec<Vertex> = g
            .vertices()
            .filter(|&v| is_interior(&g, v))
            .collect();
        for v in interior {
            g.set_kind(v, VertexKind::Z(Phase::from_radians(0.3)));
            assert!(!local_complement(&mut g, v));
        }
    }

    #[test]
    fn pivot_pair() {
        // Two interior Pauli spiders u,v H-connected; u sees wire spider a,
        // v sees wire spider b.
        for (pu, pv) in [
            (Phase::ZERO, Phase::ZERO),
            (Phase::PI, Phase::ZERO),
            (Phase::PI, Phase::PI),
        ] {
            let mut g = ZxGraph::new();
            let mut wire = Vec::new();
            for _ in 0..2 {
                let i = g.add_vertex(VertexKind::Boundary);
                let s = g.add_vertex(VertexKind::Z(Phase::from_radians(0.6)));
                let o = g.add_vertex(VertexKind::Boundary);
                g.add_edge(i, s, EdgeKind::Simple);
                g.add_edge(s, o, EdgeKind::Simple);
                g.set_input(i);
                g.set_output(o);
                wire.push(s);
            }
            let u = g.add_vertex(VertexKind::Z(pu));
            let v = g.add_vertex(VertexKind::Z(pv));
            g.add_edge(u, v, EdgeKind::Hadamard);
            g.add_edge(u, wire[0], EdgeKind::Hadamard);
            g.add_edge(v, wire[1], EdgeKind::Hadamard);
            assert!(
                check_preserves(&g, |g| pivot(g, u, v)),
                "pivot failed for {pu:?},{pv:?}"
            );
        }
    }

    #[test]
    fn pivot_with_common_neighbor() {
        let mut g = ZxGraph::new();
        let mut wire = Vec::new();
        for _ in 0..3 {
            let i = g.add_vertex(VertexKind::Boundary);
            let s = g.add_vertex(VertexKind::Z(Phase::from_radians(0.25)));
            let o = g.add_vertex(VertexKind::Boundary);
            g.add_edge(i, s, EdgeKind::Simple);
            g.add_edge(s, o, EdgeKind::Simple);
            g.set_input(i);
            g.set_output(o);
            wire.push(s);
        }
        let u = g.add_vertex(VertexKind::Z(Phase::PI));
        let v = g.add_vertex(VertexKind::Z(Phase::ZERO));
        g.add_edge(u, v, EdgeKind::Hadamard);
        g.add_edge(u, wire[0], EdgeKind::Hadamard);
        g.add_edge(v, wire[1], EdgeKind::Hadamard);
        // Common neighbor:
        g.add_edge(u, wire[2], EdgeKind::Hadamard);
        g.add_edge(v, wire[2], EdgeKind::Hadamard);
        assert!(check_preserves(&g, |g| pivot(g, u, v)));
    }

    #[test]
    fn pivot_rejects_non_pauli() {
        let mut g = ZxGraph::new();
        let u = g.add_vertex(VertexKind::Z(Phase::half_pi()));
        let v = g.add_vertex(VertexKind::Z(Phase::ZERO));
        let w = g.add_vertex(VertexKind::Z(Phase::ZERO)); // keep interiors interior
        g.add_edge(u, v, EdgeKind::Hadamard);
        g.add_edge(u, w, EdgeKind::Hadamard);
        g.add_edge(v, w, EdgeKind::Hadamard);
        assert!(!pivot(&mut g, u, v));
    }

    #[test]
    fn randomized_rule_soundness() {
        // Sweep random diagrams and apply whatever rules fire.
        let mut applied = 0;
        for seed in 0..60u64 {
            let g = random_diagram(2, 2, seed);
            // Try local complementation on a random interior spider forced
            // to ±π/2.
            let interior: Vec<Vertex> =
                g.vertices().filter(|&v| is_interior(&g, v)).collect();
            if let Some(&v) = interior.first() {
                let mut g2 = g.clone();
                g2.set_kind(
                    v,
                    VertexKind::Z(if seed % 2 == 0 {
                        Phase::half_pi()
                    } else {
                        Phase::neg_half_pi()
                    }),
                );
                if check_preserves(&g2, |g| local_complement(g, v)) {
                    applied += 1;
                }
            }
        }
        assert!(applied > 10, "too few rule applications exercised: {applied}");
    }
}

#[cfg(test)]
mod boundary_pivot_tests {
    use super::*;
    use crate::tensor::{graph_to_matrix, proportional};

    /// Wire scaffold with an interior Pauli spider u hooked to a
    /// boundary-adjacent Pauli spider v.
    fn setup(pu: Phase, pv: Phase, boundary_kind: EdgeKind) -> (ZxGraph, Vertex, Vertex) {
        let mut g = ZxGraph::new();
        // Wire 0: i0 - v - o0 where v also connects to u (H).
        let i0 = g.add_vertex(VertexKind::Boundary);
        let v = g.add_vertex(VertexKind::Z(pv));
        g.add_edge(i0, v, boundary_kind);
        g.set_input(i0);
        // Wire 1 gives u another interior anchor s1 so the pivot has work.
        let i1 = g.add_vertex(VertexKind::Boundary);
        let s1 = g.add_vertex(VertexKind::Z(Phase::from_radians(0.3)));
        let o1 = g.add_vertex(VertexKind::Boundary);
        g.add_edge(i1, s1, EdgeKind::Simple);
        g.add_edge(s1, o1, EdgeKind::Simple);
        g.set_input(i1);
        g.set_output(o1);
        let u = g.add_vertex(VertexKind::Z(pu));
        g.add_edge(u, v, EdgeKind::Hadamard);
        g.add_edge(u, s1, EdgeKind::Hadamard);
        // v's output side: H-edge to a wire spider s0 then out.
        let s0 = g.add_vertex(VertexKind::Z(Phase::from_radians(0.7)));
        let o0 = g.add_vertex(VertexKind::Boundary);
        g.add_edge(v, s0, EdgeKind::Hadamard);
        g.add_edge(s0, o0, EdgeKind::Simple);
        g.set_output(o0);
        (g, u, v)
    }

    #[test]
    fn boundary_pivot_preserves_semantics() {
        for (pu, pv) in [
            (Phase::ZERO, Phase::ZERO),
            (Phase::PI, Phase::ZERO),
            (Phase::ZERO, Phase::PI),
            (Phase::PI, Phase::PI),
        ] {
            for kind in [EdgeKind::Simple, EdgeKind::Hadamard] {
                let (g, u, v) = setup(pu, pv, kind);
                let before = graph_to_matrix(&g).unwrap();
                let mut g2 = g.clone();
                assert!(pivot_boundary(&mut g2, u, v), "refused for {pu:?},{pv:?}");
                let after = graph_to_matrix(&g2).unwrap();
                assert!(
                    proportional(&before, &after, 1e-8),
                    "semantics broken for {pu:?},{pv:?},{kind:?}"
                );
                assert!(!g2.exists(u));
                assert!(!g2.exists(v));
            }
        }
    }

    #[test]
    fn boundary_pivot_rejects_non_pauli() {
        let (mut g, u, v) = setup(Phase::half_pi(), Phase::ZERO, EdgeKind::Simple);
        assert!(!pivot_boundary(&mut g, u, v));
    }

    #[test]
    fn boundary_pivot_rejects_two_boundaries() {
        // v directly between input and output: two boundary neighbors.
        let mut g = ZxGraph::new();
        let i = g.add_vertex(VertexKind::Boundary);
        let v = g.add_vertex(VertexKind::Z(Phase::ZERO));
        let o = g.add_vertex(VertexKind::Boundary);
        g.add_edge(i, v, EdgeKind::Simple);
        g.add_edge(v, o, EdgeKind::Simple);
        g.set_input(i);
        g.set_output(o);
        let u = g.add_vertex(VertexKind::Z(Phase::ZERO));
        let anchor = g.add_vertex(VertexKind::Z(Phase::ZERO));
        g.add_edge(u, v, EdgeKind::Hadamard);
        g.add_edge(u, anchor, EdgeKind::Hadamard);
        g.add_edge(anchor, v, EdgeKind::Hadamard);
        assert!(!pivot_boundary(&mut g, u, v));
    }
}

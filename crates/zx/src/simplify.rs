//! Simplification strategies: iterated rewrite passes in the style of
//! PyZX's `interior_clifford_simp` / `full_reduce`.

use crate::graph::{EdgeKind, Vertex, ZxGraph};
use crate::rules::{
    fuse, is_interior, local_complement, pivot, pivot_boundary, remove_identity,
};

/// Statistics from a simplification run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Spider fusions applied.
    pub fusions: usize,
    /// Identity spiders removed.
    pub identities: usize,
    /// Local complementations applied.
    pub local_complements: usize,
    /// Pivots applied.
    pub pivots: usize,
}

impl SimplifyStats {
    /// Total rewrites applied.
    pub fn total(&self) -> usize {
        self.fusions + self.identities + self.local_complements + self.pivots
    }
}

/// Fuses every simple Z–Z edge until none remain. Returns fusions applied.
///
/// Single pass with a per-vertex inner fixpoint: fusing `b` into `v` only
/// changes `v`'s neighborhood, so once `v` has no simple Z-neighbors left
/// it never gains one from later fusions elsewhere — no global rescans.
pub fn fuse_all(g: &mut ZxGraph) -> usize {
    let mut count = 0;
    for v in g.vertices().collect::<Vec<_>>() {
        if !g.exists(v) || !g.kind(v).is_z() {
            continue;
        }
        loop {
            let target = g
                .neighbors(v)
                .find(|&(w, kind)| kind == EdgeKind::Simple && g.kind(w).is_z())
                .map(|(w, _)| w);
            match target {
                Some(w) => {
                    if !fuse(g, v, w) {
                        break;
                    }
                    count += 1;
                }
                None => break,
            }
        }
    }
    count
}

/// Removes phase-0 degree-2 spiders until none can be removed.
pub fn remove_identities(g: &mut ZxGraph) -> usize {
    let mut count = 0;
    loop {
        let candidates: Vec<Vertex> = g.vertices().collect();
        let mut any = false;
        for v in candidates {
            if g.exists(v) && remove_identity(g, v) {
                count += 1;
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    count
}

/// Applies local complementation at every interior ±π/2 spider until none
/// remain.
pub fn local_complement_simp(g: &mut ZxGraph) -> usize {
    let mut count = 0;
    loop {
        let candidates: Vec<Vertex> = g
            .vertices()
            .filter(|&v| is_interior(g, v) && g.kind(v).phase().is_proper_clifford())
            .collect();
        let mut any = false;
        for v in candidates {
            if g.exists(v) && local_complement(g, v) {
                count += 1;
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    count
}

/// Applies pivots on interior Pauli–Pauli Hadamard-connected pairs until
/// none remain.
pub fn pivot_simp(g: &mut ZxGraph) -> usize {
    let mut count = 0;
    loop {
        let mut any = false;
        for v in g.vertices().collect::<Vec<_>>() {
            if !g.exists(v) || !is_interior(g, v) || !g.kind(v).phase().is_pauli() {
                continue;
            }
            for (w, kind) in g.neighbors(v).collect::<Vec<_>>() {
                if kind == EdgeKind::Hadamard
                    && is_interior(g, w)
                    && g.kind(w).phase().is_pauli()
                    && pivot(g, v, w)
                {
                    count += 1;
                    any = true;
                    break;
                }
            }
        }
        if !any {
            break;
        }
    }
    count
}

/// Applies boundary pivots (interior Pauli spider against a Pauli spider
/// touching one boundary) until none remain.
pub fn pivot_boundary_simp(g: &mut ZxGraph) -> usize {
    let mut count = 0;
    loop {
        let mut any = false;
        for v in g.vertices().collect::<Vec<_>>() {
            if !g.exists(v) || !is_interior(g, v) || !g.kind(v).phase().is_pauli() {
                continue;
            }
            for (w, kind) in g.neighbors(v).collect::<Vec<_>>() {
                if kind == EdgeKind::Hadamard
                    && g.exists(w)
                    && g.kind(w).is_z()
                    && g.kind(w).phase().is_pauli()
                    && pivot_boundary(g, v, w)
                {
                    count += 1;
                    any = true;
                    break;
                }
            }
        }
        if !any {
            break;
        }
    }
    count
}

/// The main simplification loop: alternate fusion, identity removal,
/// local complementation and pivoting to a fixpoint. This is the
/// `interior_clifford_simp` strategy of Duncan et al., which preserves
/// the gflow needed for circuit extraction.
pub fn interior_clifford_simp(g: &mut ZxGraph) -> SimplifyStats {
    let mut stats = SimplifyStats::default();
    loop {
        // Restore the graph-like invariant first: identity removal can
        // splice two Hadamard edges into a simple spider-spider edge,
        // which fusion must absorb before local complementation or
        // pivoting may fire (both refuse non-graph-like neighborhoods).
        let mut normalized = 0;
        loop {
            let f = fuse_all(g);
            let i = remove_identities(g);
            stats.fusions += f;
            stats.identities += i;
            normalized += f + i;
            if f + i == 0 {
                break;
            }
        }
        let l = local_complement_simp(g);
        stats.local_complements += l;
        let p = pivot_simp(g);
        stats.pivots += p;
        let pb = pivot_boundary_simp(g);
        stats.pivots += pb;
        if normalized + l + p + pb == 0 {
            break;
        }
    }
    stats
}

/// Full reduction: currently the interior Clifford simplification (phase
/// gadget extraction is future work; see DESIGN.md).
pub fn full_reduce(g: &mut ZxGraph) -> SimplifyStats {
    interior_clifford_simp(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::circuit_to_graph;
    use crate::tensor::{graph_to_matrix, proportional};
    use epoc_circuit::{generators, Circuit, Gate};

    fn check_simplify_preserves(c: &Circuit) -> SimplifyStats {
        let mut g = circuit_to_graph(c).unwrap();
        let before = graph_to_matrix(&g).unwrap();
        let stats = full_reduce(&mut g);
        let after = graph_to_matrix(&g).unwrap();
        assert!(
            proportional(&before, &after, 1e-7),
            "simplification changed semantics\n{c}\n{g:?}"
        );
        stats
    }

    #[test]
    fn simplify_preserves_bell() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
        // The Bell diagram is already minimal — just require soundness.
        check_simplify_preserves(&c);
    }

    #[test]
    fn simplify_preserves_ghz3() {
        check_simplify_preserves(&generators::ghz(3));
    }

    #[test]
    fn simplify_cancels_double_cx() {
        let mut c = Circuit::new(2);
        c.push(Gate::CX, &[0, 1]).push(Gate::CX, &[0, 1]);
        let mut g = circuit_to_graph(&c).unwrap();
        full_reduce(&mut g);
        // Should reduce to bare wires (no spiders).
        assert_eq!(g.spider_count(), 0, "{g:?}");
    }

    #[test]
    fn simplify_cancels_hh() {
        let mut c = Circuit::new(1);
        c.push(Gate::H, &[0]).push(Gate::H, &[0]);
        let mut g = circuit_to_graph(&c).unwrap();
        full_reduce(&mut g);
        assert_eq!(g.spider_count(), 0);
        let m = graph_to_matrix(&g).unwrap();
        assert!(proportional(&m, &epoc_linalg::Matrix::identity(2), 1e-10));
    }

    #[test]
    fn simplify_merges_rotations() {
        let mut c = Circuit::new(1);
        c.push(Gate::RZ(0.3), &[0])
            .push(Gate::RZ(0.4), &[0])
            .push(Gate::T, &[0]);
        let mut g = circuit_to_graph(&c).unwrap();
        full_reduce(&mut g);
        assert_eq!(g.spider_count(), 1);
        check_simplify_preserves(&c);
    }

    #[test]
    fn simplify_preserves_t_gate_program() {
        let mut c = Circuit::new(2);
        c.push(Gate::T, &[0])
            .push(Gate::CX, &[0, 1])
            .push(Gate::T, &[1])
            .push(Gate::CX, &[0, 1])
            .push(Gate::Tdg, &[0]);
        check_simplify_preserves(&c);
    }

    #[test]
    fn simplify_preserves_random_circuits() {
        for seed in 0..20u64 {
            let c = generators::random_circuit(2, 8, seed);
            check_simplify_preserves(&c);
        }
    }

    #[test]
    fn simplify_preserves_random_clifford_t() {
        for seed in 0..20u64 {
            let c = generators::random_clifford_t(2, 10, 0.3, seed);
            check_simplify_preserves(&c);
        }
    }

    #[test]
    fn simplify_reduces_spider_count() {
        let c = generators::random_clifford_t(3, 30, 0.2, 5);
        let mut g = circuit_to_graph(&c).unwrap();
        let before = g.spider_count();
        full_reduce(&mut g);
        let after = g.spider_count();
        assert!(
            after < before,
            "no reduction: {before} -> {after}"
        );
    }

    #[test]
    fn stats_accumulate() {
        let c = generators::random_clifford_t(3, 40, 0.1, 9);
        let mut g = circuit_to_graph(&c).unwrap();
        let stats = full_reduce(&mut g);
        assert!(stats.fusions > 0);
        assert!(stats.total() >= stats.fusions);
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;
    use crate::convert::circuit_to_graph;
    use crate::extract::extract_circuit;
    use crate::tensor::{graph_to_matrix, proportional};
    use epoc_circuit::generators;

    /// Regression: identity removal can splice a *simple* spider-spider
    /// edge into a local-complementation neighborhood; the rule used to
    /// toggle it into a Hadamard edge and corrupt the diagram
    /// (random_circuit(2, 13, seed 2917) triggered it).
    #[test]
    fn lc_with_simple_edge_in_neighborhood_is_sound() {
        let c = generators::random_circuit(2, 13, 2140u64.wrapping_add(777));
        let mut g = circuit_to_graph(&c).unwrap();
        let before = graph_to_matrix(&g).unwrap();
        full_reduce(&mut g);
        let after = graph_to_matrix(&g).unwrap();
        assert!(proportional(&before, &after, 1e-8), "semantics broken");
        let out = extract_circuit(&g).expect("extraction succeeds after fix");
        assert!(epoc_circuit::circuits_equivalent(&c, &out, 1e-6));
    }
}

//! Tensor semantics of ZX diagrams.
//!
//! Evaluates a graph-like diagram (Z spiders + boundaries only) to the
//! linear map it denotes, by summing over binary assignments to the
//! interior spiders:
//!
//! * Z spider with phase α and value `z` contributes `e^{iαz}`;
//! * a simple edge forces equal values;
//! * a Hadamard edge between values `a`, `b` contributes `(−1)^{ab}`
//!   (`1/√2` scalars are dropped — evaluation is *up to global scalar*,
//!   which is all rewrite-soundness checking needs).
//!
//! Exponential in the spider count — strictly a verification tool for the
//! test suites; the compiler never evaluates diagrams this way.

use crate::graph::{EdgeKind, Vertex, VertexKind, ZxGraph};
use epoc_linalg::{Complex64, Matrix};

/// Error from [`graph_to_matrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The diagram contains X spiders (color-change them first).
    HasXSpiders,
    /// A boundary vertex is not connected to exactly one edge.
    BadBoundary(Vertex),
    /// Too many interior spiders to evaluate (limit 20).
    TooLarge(usize),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::HasXSpiders => write!(f, "diagram contains X spiders"),
            TensorError::BadBoundary(v) => write!(f, "boundary vertex {v} has degree != 1"),
            TensorError::TooLarge(n) => write!(f, "too many spiders to evaluate: {n}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Evaluates the diagram to its matrix (outputs × inputs), up to a global
/// scalar.
///
/// Row index bits follow the output boundary order (first output = most
/// significant bit), column index bits follow the input order — matching
/// the big-endian convention of `epoc-circuit`.
///
/// # Errors
///
/// See [`TensorError`].
pub fn graph_to_matrix(g: &ZxGraph) -> Result<Matrix, TensorError> {
    // Collect interior spiders.
    let mut spiders: Vec<Vertex> = Vec::new();
    for v in g.vertices() {
        match g.kind(v) {
            VertexKind::X(_) => return Err(TensorError::HasXSpiders),
            VertexKind::Z(_) => spiders.push(v),
            VertexKind::Boundary => {
                if g.degree(v) != 1 {
                    return Err(TensorError::BadBoundary(v));
                }
            }
        }
    }
    if spiders.len() > 20 {
        return Err(TensorError::TooLarge(spiders.len()));
    }
    let spider_index: std::collections::HashMap<Vertex, usize> = spiders
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();

    let n_in = g.inputs().len();
    let n_out = g.outputs().len();
    let rows = 1usize << n_out;
    let cols = 1usize << n_in;
    let mut m = Matrix::zeros(rows, cols);

    // Pre-extract structures.
    let phases: Vec<f64> = spiders
        .iter()
        .map(|&v| g.kind(v).phase().radians())
        .collect();
    // Edges among spiders.
    let mut spider_edges: Vec<(usize, usize, EdgeKind)> = Vec::new();
    for (a, b, k) in g.edges() {
        if let (Some(&ia), Some(&ib)) = (spider_index.get(&a), spider_index.get(&b)) {
            spider_edges.push((ia, ib, k));
        }
    }
    // Boundary attachments: (boundary value source, spider index or direct
    // boundary-to-boundary wires).
    struct BoundaryLink {
        bit_source: BitSource,
        kind: EdgeKind,
        other: OtherEnd,
    }
    #[derive(Clone, Copy)]
    enum BitSource {
        Input(usize),
        Output(usize),
    }
    #[derive(Clone, Copy)]
    enum OtherEnd {
        Spider(usize),
        Boundary(BitSource),
    }
    let classify = |v: Vertex| -> Option<BitSource> {
        if let Some(pos) = g.inputs().iter().position(|&x| x == v) {
            return Some(BitSource::Input(pos));
        }
        g.outputs()
            .iter()
            .position(|&x| x == v)
            .map(BitSource::Output)
    };
    let mut links: Vec<BoundaryLink> = Vec::new();
    let mut seen_pairs: std::collections::HashSet<(Vertex, Vertex)> = Default::default();
    for v in g.vertices() {
        if !g.kind(v).is_boundary() {
            continue;
        }
        let src = classify(v).ok_or(TensorError::BadBoundary(v))?;
        let (w, kind) = g.neighbors(v).next().ok_or(TensorError::BadBoundary(v))?;
        if g.kind(w).is_boundary() {
            // Boundary-to-boundary wire: record once.
            let key = (v.min(w), v.max(w));
            if seen_pairs.insert(key) {
                let other_src = classify(w).ok_or(TensorError::BadBoundary(w))?;
                links.push(BoundaryLink {
                    bit_source: src,
                    kind,
                    other: OtherEnd::Boundary(other_src),
                });
            }
        } else {
            links.push(BoundaryLink {
                bit_source: src,
                kind,
                other: OtherEnd::Spider(spider_index[&w]),
            });
        }
    }

    let n_spiders = spiders.len();
    for out_bits in 0..rows {
        for in_bits in 0..cols {
            let bit_of = |src: BitSource| -> usize {
                match src {
                    BitSource::Input(pos) => (in_bits >> (n_in - 1 - pos)) & 1,
                    BitSource::Output(pos) => (out_bits >> (n_out - 1 - pos)) & 1,
                }
            };
            let mut acc = Complex64::ZERO;
            'assign: for z in 0..(1usize << n_spiders) {
                let mut amp = Complex64::ONE;
                // Spider phases.
                for (s, &phi) in phases.iter().enumerate() {
                    if (z >> s) & 1 == 1 && phi != 0.0 {
                        amp *= Complex64::cis(phi);
                    }
                }
                // Spider-spider edges.
                for &(a, b, kind) in &spider_edges {
                    let za = (z >> a) & 1;
                    let zb = (z >> b) & 1;
                    match kind {
                        EdgeKind::Simple => {
                            if za != zb {
                                continue 'assign;
                            }
                        }
                        EdgeKind::Hadamard => {
                            if za & zb == 1 {
                                amp = -amp;
                            }
                        }
                    }
                }
                // Boundary links.
                for link in &links {
                    let bit = bit_of(link.bit_source);
                    let other = match link.other {
                        OtherEnd::Spider(s) => (z >> s) & 1,
                        OtherEnd::Boundary(src) => bit_of(src),
                    };
                    match link.kind {
                        EdgeKind::Simple => {
                            if bit != other {
                                continue 'assign;
                            }
                        }
                        EdgeKind::Hadamard => {
                            if bit & other == 1 {
                                amp = -amp;
                            }
                        }
                    }
                }
                acc += amp;
            }
            m[(out_bits, in_bits)] = acc;
        }
    }
    Ok(m)
}

/// `true` when `a = λ·b` for some nonzero complex scalar λ, within `tol`
/// relative tolerance. Both zero matrices also count as proportional.
pub fn proportional(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return false;
    }
    let na = a.frobenius_norm();
    let nb = b.frobenius_norm();
    if na < 1e-12 && nb < 1e-12 {
        return true;
    }
    if na < 1e-12 || nb < 1e-12 {
        return false;
    }
    // |<A,B>| = ||A||·||B|| exactly when proportional (Cauchy–Schwarz).
    let ip = a.hs_inner(b).abs();
    (ip - na * nb).abs() <= tol * na * nb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;
    use epoc_linalg::{c64, Matrix};
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    /// Builds an n-wire identity-ish scaffold: input boundary -> spider ->
    /// output boundary per wire, returning (graph, spiders).
    fn wire_graph(n: usize) -> (ZxGraph, Vec<Vertex>) {
        let mut g = ZxGraph::new();
        let mut spiders = Vec::new();
        for _ in 0..n {
            let i = g.add_vertex(VertexKind::Boundary);
            let s = g.add_vertex(VertexKind::Z(Phase::ZERO));
            let o = g.add_vertex(VertexKind::Boundary);
            g.add_edge(i, s, EdgeKind::Simple);
            g.add_edge(s, o, EdgeKind::Simple);
            g.set_input(i);
            g.set_output(o);
            spiders.push(s);
        }
        (g, spiders)
    }

    #[test]
    fn identity_wire() {
        let (g, _) = wire_graph(1);
        let m = graph_to_matrix(&g).unwrap();
        assert!(proportional(&m, &Matrix::identity(2), 1e-10));
    }

    #[test]
    fn direct_boundary_wire() {
        let mut g = ZxGraph::new();
        let i = g.add_vertex(VertexKind::Boundary);
        let o = g.add_vertex(VertexKind::Boundary);
        g.add_edge(i, o, EdgeKind::Simple);
        g.set_input(i);
        g.set_output(o);
        let m = graph_to_matrix(&g).unwrap();
        assert!(proportional(&m, &Matrix::identity(2), 1e-10));
    }

    #[test]
    fn hadamard_edge_is_hadamard() {
        let mut g = ZxGraph::new();
        let i = g.add_vertex(VertexKind::Boundary);
        let o = g.add_vertex(VertexKind::Boundary);
        g.add_edge(i, o, EdgeKind::Hadamard);
        g.set_input(i);
        g.set_output(o);
        let m = graph_to_matrix(&g).unwrap();
        let h = Matrix::from_rows(&[
            &[c64(1.0, 0.0), c64(1.0, 0.0)],
            &[c64(1.0, 0.0), c64(-1.0, 0.0)],
        ]);
        assert!(proportional(&m, &h, 1e-10));
    }

    #[test]
    fn phase_spider_is_rz() {
        let (mut g, spiders) = wire_graph(1);
        g.set_kind(spiders[0], VertexKind::Z(Phase::from_radians(FRAC_PI_4)));
        let m = graph_to_matrix(&g).unwrap();
        let t = Matrix::from_diag(&[Complex64::ONE, Complex64::cis(FRAC_PI_4)]);
        assert!(proportional(&m, &t, 1e-10));
    }

    #[test]
    fn cz_diagram() {
        // Two wires with spiders connected by an H-edge = CZ.
        let (mut g, s) = wire_graph(2);
        g.add_edge(s[0], s[1], EdgeKind::Hadamard);
        let m = graph_to_matrix(&g).unwrap();
        let cz = Matrix::from_diag(&[
            Complex64::ONE,
            Complex64::ONE,
            Complex64::ONE,
            c64(-1.0, 0.0),
        ]);
        assert!(proportional(&m, &cz, 1e-10));
    }

    #[test]
    fn cnot_diagram() {
        // CX = (I⊗H) CZ (I⊗H): H edges on the target wire.
        let mut g = ZxGraph::new();
        let i0 = g.add_vertex(VertexKind::Boundary);
        let s0 = g.add_vertex(VertexKind::Z(Phase::ZERO));
        let o0 = g.add_vertex(VertexKind::Boundary);
        let i1 = g.add_vertex(VertexKind::Boundary);
        let s1 = g.add_vertex(VertexKind::Z(Phase::ZERO));
        let o1 = g.add_vertex(VertexKind::Boundary);
        g.add_edge(i0, s0, EdgeKind::Simple);
        g.add_edge(s0, o0, EdgeKind::Simple);
        g.add_edge(i1, s1, EdgeKind::Hadamard);
        g.add_edge(s1, o1, EdgeKind::Hadamard);
        g.add_edge(s0, s1, EdgeKind::Hadamard);
        g.set_input(i0);
        g.set_input(i1);
        g.set_output(o0);
        g.set_output(o1);
        let m = graph_to_matrix(&g).unwrap();
        let o = Complex64::ONE;
        let z = Complex64::ZERO;
        let cx = Matrix::from_rows(&[
            &[o, z, z, z],
            &[z, o, z, z],
            &[z, z, z, o],
            &[z, z, o, z],
        ]);
        assert!(proportional(&m, &cx, 1e-10));
    }

    #[test]
    fn spider_fusion_semantics() {
        // Two connected phase spiders on one wire = one spider with the sum.
        let mut g = ZxGraph::new();
        let i = g.add_vertex(VertexKind::Boundary);
        let a = g.add_vertex(VertexKind::Z(Phase::from_radians(0.4)));
        let b = g.add_vertex(VertexKind::Z(Phase::from_radians(0.8)));
        let o = g.add_vertex(VertexKind::Boundary);
        g.add_edge(i, a, EdgeKind::Simple);
        g.add_edge(a, b, EdgeKind::Simple);
        g.add_edge(b, o, EdgeKind::Simple);
        g.set_input(i);
        g.set_output(o);
        let m = graph_to_matrix(&g).unwrap();
        let rz = Matrix::from_diag(&[Complex64::ONE, Complex64::cis(1.2)]);
        assert!(proportional(&m, &rz, 1e-10));
    }

    #[test]
    fn copy_through_state() {
        // A single Z spider with only two outputs = |00> + |11> (GHZ-2 up to scalar).
        let mut g = ZxGraph::new();
        let s = g.add_vertex(VertexKind::Z(Phase::ZERO));
        let o0 = g.add_vertex(VertexKind::Boundary);
        let o1 = g.add_vertex(VertexKind::Boundary);
        g.add_edge(s, o0, EdgeKind::Simple);
        g.add_edge(s, o1, EdgeKind::Simple);
        g.set_output(o0);
        g.set_output(o1);
        let m = graph_to_matrix(&g).unwrap();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 1);
        assert!(m[(0, 0)].abs() > 0.5);
        assert!(m[(3, 0)].abs() > 0.5);
        assert!(m[(1, 0)].abs() < 1e-10);
        assert!(m[(2, 0)].abs() < 1e-10);
    }

    #[test]
    fn proportional_detects_scalar_multiples() {
        let a = Matrix::identity(2);
        let b = a.scale(Complex64::cis(1.3)).scale_re(2.5);
        assert!(proportional(&a, &b, 1e-10));
        let c = Matrix::from_diag(&[Complex64::ONE, c64(-1.0, 0.0)]);
        assert!(!proportional(&a, &c, 1e-6));
    }

    #[test]
    fn rejects_x_spiders() {
        let mut g = ZxGraph::new();
        g.add_vertex(VertexKind::X(Phase::ZERO));
        assert_eq!(graph_to_matrix(&g).unwrap_err(), TensorError::HasXSpiders);
    }

    #[test]
    fn s_gate_squared_is_z() {
        let (mut g, s) = wire_graph(1);
        g.set_kind(s[0], VertexKind::Z(Phase::from_radians(FRAC_PI_2)));
        let m = graph_to_matrix(&g).unwrap();
        let m2 = m.matmul(&m);
        let z = Matrix::from_diag(&[Complex64::ONE, c64(-1.0, 0.0)]);
        assert!(proportional(&m2, &z, 1e-10));
    }
}

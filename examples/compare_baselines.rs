//! Table-1-style comparison: gate-based vs PAQOC-like vs EPOC on the
//! seven circuits the paper reports.
//!
//! ```sh
//! cargo run -p epoc --example compare_baselines --release
//! ```

use epoc::baselines::{gate_based, PaqocCompiler};
use epoc::{EpocCompiler, EpocConfig};
use epoc_circuit::generators;

fn main() {
    let epoc = EpocCompiler::new(EpocConfig::default());
    let paqoc = PaqocCompiler::default();

    println!(
        "{:<10} {:>12} {:>12} {:>12} | {:>9} {:>9}",
        "circuit", "gate (ns)", "paqoc (ns)", "epoc (ns)", "f(paqoc)", "f(epoc)"
    );
    let mut sums = (0.0, 0.0, 0.0);
    for b in generators::table1_suite() {
        let g = gate_based(&b.circuit);
        let p = paqoc.compile(&b.circuit);
        let e = epoc.compile(&b.circuit).expect("benchmark circuits compile");
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>12.1} | {:>9.4} {:>9.4}",
            b.name,
            g.latency(),
            p.latency(),
            e.latency(),
            p.esp(),
            e.esp()
        );
        sums.0 += g.latency();
        sums.1 += p.latency();
        sums.2 += e.latency();
    }
    println!(
        "\naverage latency reduction: EPOC vs PAQOC {:.2}%, EPOC vs gate-based {:.2}%",
        100.0 * (1.0 - sums.2 / sums.1),
        100.0 * (1.0 - sums.2 / sums.0)
    );
    println!(
        "(paper reports 31.74% vs PAQOC and 76.80% vs gate-based on its testbed)"
    );
}

//! Control-electronics ablation: simulated process fidelity per
//! constraint level, constrained GRAPE vs post-hoc conditioning
//! (the EXPERIMENTS.md "hardware" table).
//!
//! ```sh
//! cargo run -p epoc --example hw_constraints --release
//! ```
//!
//! For each profile rung (ideal → 8-bit DAC → +filter → +crosstalk →
//! SFQ) the same benchmark is compiled twice:
//!
//! * **post-hoc** — GRAPE optimizes against ideal electronics, then the
//!   emitted waveforms are distorted through the profile afterwards (what
//!   naively driving real electronics with ideal pulses would do);
//! * **constrained** — GRAPE optimizes *under* the profile
//!   (`EpocConfig::with_hw`), so each iteration scores the conditioned
//!   waveform and the optimizer pre-compensates the distortion.
//!
//! Both schedules are replayed by `epoc-sim` against the source circuit's
//! unitary; the gap between the two columns is the fidelity constrained
//! compilation recovers.

use epoc::hw::{ConditionWorkspace, HardwareProfile};
use epoc::qoc::{DeviceModel, PulseWaveform};
use epoc::sim::SimOptions;
use epoc::{simulate_schedule, EpocCompiler, EpocConfig};
use epoc_circuit::generators;
use epoc_pulse::{PulsePayload, PulseSchedule, ScheduledPulse};
use std::sync::Arc;

/// The constraint ladder: each rung adds one distortion on top of the
/// previous (the intermediate rungs are the `transmon_awg_8bit` preset
/// with later stages disabled).
fn profile_ladder() -> Vec<HardwareProfile> {
    let full = HardwareProfile::transmon_awg_8bit();
    vec![
        HardwareProfile::ideal(),
        HardwareProfile {
            name: "awg_8bit_dac".into(),
            filter_sigma: 0.0,
            filter_chop: 0.0,
            crosstalk: 0.0,
            ..full.clone()
        },
        HardwareProfile {
            name: "awg_8bit_filter".into(),
            crosstalk: 0.0,
            ..full.clone()
        },
        full,
        HardwareProfile::sfq_bitstream(),
    ]
}

/// Distorts every waveform payload of an ideal-electronics schedule
/// through `profile` — the "what if we just played these pulses" arm.
fn condition_post_hoc(profile: &HardwareProfile, schedule: &PulseSchedule) -> PulseSchedule {
    let a_max = DeviceModel::transmon_line(1)
        .expect("single-qubit transmon line is always well-formed")
        .max_amplitude();
    let mut ws = ConditionWorkspace::new();
    let mut out = PulseSchedule::new(schedule.n_qubits());
    for f in schedule.frames() {
        out.push_frame(f.clone());
    }
    for p in schedule.pulses() {
        let payload = match &p.payload {
            PulsePayload::Waveform(w) => {
                let mut controls = w.controls().to_vec();
                profile.condition_controls(w.dt(), a_max, &mut controls, &mut ws);
                PulsePayload::Waveform(Arc::new(PulseWaveform::new(w.dt(), controls)))
            }
            other => other.clone(),
        };
        out.push(ScheduledPulse {
            payload,
            ..p.clone()
        });
    }
    out
}

fn main() {
    let circuit = generators::ghz(3);
    let opts = SimOptions::default();

    // One ideal compile feeds every post-hoc arm.
    let ideal_report = EpocCompiler::new(EpocConfig::with_grape(2))
        .compile(&circuit)
        .expect("benchmark circuits compile");
    assert!(ideal_report.verified);

    println!("ghz_n3, simulated process fidelity per constraint level:\n");
    println!(
        "{:<20} {:>8} {:>10} {:>12} {:>13}",
        "profile", "esp", "post-hoc", "constrained", "recovered"
    );
    for profile in profile_ladder() {
        let post_hoc = simulate_schedule(
            &circuit,
            &condition_post_hoc(&profile, &ideal_report.schedule),
            &opts,
        )
        .expect("post-hoc schedule simulates")
        .outcome
        .process_fidelity;

        let constrained_report =
            EpocCompiler::new(EpocConfig::with_grape(2).with_hw(profile.clone()))
                .compile(&circuit)
                .expect("constrained compile succeeds");
        assert!(constrained_report.verified);
        let constrained =
            simulate_schedule(&circuit, &constrained_report.schedule, &opts)
                .expect("constrained schedule simulates")
                .outcome
                .process_fidelity;

        println!(
            "{:<20} {:>8.4} {:>10.6} {:>12.6} {:>+13.6}",
            profile.name,
            constrained_report.esp(),
            post_hoc,
            constrained,
            constrained - post_hoc,
        );
    }
    println!(
        "\npost-hoc = ideal-electronics GRAPE pulses distorted by the profile afterwards;\n\
         constrained = GRAPE optimized under the profile (EpocConfig::with_hw)."
    );
}

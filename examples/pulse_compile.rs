//! Low-level pulse generation: run GRAPE against the simulated transmon
//! device, binary-search the minimal duration, and inspect the waveform.
//!
//! ```sh
//! cargo run -p epoc --example pulse_compile --release
//! ```

use epoc_circuit::{Circuit, Gate};
use epoc_pulse::Envelope;
use epoc_qoc::{
    grape, minimize_duration, DeviceModel, DurationSearchConfig, GrapeConfig,
};

fn main() {
    // --- single-qubit X gate -------------------------------------------
    let device = DeviceModel::transmon_line(1).unwrap();
    let x = Gate::X.unitary_matrix();
    let sol = minimize_duration(&device, &x, &DurationSearchConfig::default())
        .expect("X gate is reachable");
    println!(
        "X gate: minimal pulse {} ns ({} slots, fidelity {:.6}, {} GRAPE probes)",
        sol.result.duration, sol.n_slots, sol.result.fidelity, sol.probes
    );
    // Wrap the optimized X-channel samples in an envelope and sample it.
    let env = Envelope::PiecewiseConstant {
        samples: sol.result.controls[0].clone(),
        dt: device.dt(),
    };
    println!(
        "  X-drive area {:.3} rad (π = {:.3}); peak {:.4} rad/ns (bound {:.4})",
        env.area(),
        std::f64::consts::PI,
        env.peak(),
        device.max_amplitude()
    );
    print!("  waveform: ");
    let d = env.duration();
    for i in 0..32 {
        let a = env.sample(d * i as f64 / 32.0);
        let bars = ((a / device.max_amplitude()).abs() * 8.0) as usize;
        print!("{}", ["·", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"][bars.min(8)]);
    }
    println!();

    // --- two-qubit entangling block ------------------------------------
    let device2 = DeviceModel::transmon_line(2).unwrap();
    let mut block = Circuit::new(2);
    block.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
    let target = block.unitary();
    println!("\nBell block (H·CX) on the 2-qubit device:");
    for slots in [64, 128, 256] {
        let r = grape(&device2, &target, slots, &GrapeConfig::default())
            .expect("well-formed GRAPE inputs");
        println!(
            "  {:>3} slots ({:>4.0} ns): fidelity {:.6}",
            slots,
            slots as f64 * device2.dt(),
            r.fidelity
        );
    }
    let sol2 = minimize_duration(
        &device2,
        &target,
        &DurationSearchConfig {
            initial_slots: 32,
            max_slots: 1024,
            ..Default::default()
        },
    )
    .expect("Bell block reachable");
    println!(
        "  minimal: {} ns at fidelity {:.6}",
        sol2.result.duration, sol2.result.fidelity
    );
    println!(
        "  gate-based comparison: H + CX = {} ns",
        35.5 + 300.0
    );
}

//! Quickstart: compile a circuit with EPOC and compare against the
//! gate-based and PAQOC-like baselines.
//!
//! ```sh
//! cargo run -p epoc --example quickstart
//! ```

use epoc::baselines::{gate_based, PaqocCompiler};
use epoc::{EpocCompiler, EpocConfig};
use epoc_circuit::generators;

fn main() {
    // An 8-qubit quantum-neural-network ansatz, the kind of variational
    // workload the paper's intro motivates.
    let circuit = generators::dnn(8, 2, 11);
    println!(
        "input: {} qubits, {} gates, depth {}\n",
        circuit.n_qubits(),
        circuit.len(),
        circuit.depth()
    );

    let epoc = EpocCompiler::new(EpocConfig::default()).compile(&circuit).expect("circuit compiles");
    let paqoc = PaqocCompiler::default().compile(&circuit);
    let gates = gate_based(&circuit);

    println!("{}", gates.summary());
    println!("{}", paqoc.summary());
    println!("{}", epoc.summary());
    println!();
    println!(
        "EPOC vs PAQOC     : {:.2}% latency reduction",
        100.0 * (1.0 - epoc.latency() / paqoc.latency())
    );
    println!(
        "EPOC vs gate-based: {:.2}% latency reduction",
        100.0 * (1.0 - epoc.latency() / gates.latency())
    );
    println!(
        "\npipeline stages: ZX depth {} -> {}, {} synthesis blocks ({} converged), \
         {} VUG-stream gates, {} pulses, cache {}/{} hits",
        epoc.stages.zx_depth_before,
        epoc.stages.zx_depth_after,
        epoc.stages.synth_blocks,
        epoc.stages.synth_converged,
        epoc.stages.vug_stream_gates,
        epoc.stages.pulses,
        epoc.stages.cache_hits,
        epoc.stages.cache_hits + epoc.stages.cache_misses,
    );
    assert!(epoc.verified, "EPOC output failed semantic verification");
    println!("\nsemantic verification: PASSED");
}

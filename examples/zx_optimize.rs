//! The paper's Figure 4 walk-through: ZX graph-based depth optimization
//! of the 4-qubit Bell-pair preparation circuit, then block synthesis.
//!
//! ```sh
//! cargo run -p epoc --example zx_optimize
//! ```

use epoc_circuit::{circuits_equivalent, generators};
use epoc_partition::{greedy_partition, PartitionConfig};
use epoc_synth::{synthesize_or_fallback, SynthConfig};
use epoc_zx::zx_optimize;

fn main() {
    let circuit = generators::bell_pair_prep();
    println!("=== Figure 4(a): input circuit ===");
    println!("{circuit}");

    // (b) ZX conversion + rewriting, (c) extraction.
    let result = zx_optimize(&circuit);
    println!("=== after ZX optimization ===");
    println!("{}", result.circuit);
    println!(
        "depth {} -> {} ({:.2}x), gates {} -> {}",
        result.depth_before,
        result.depth_after,
        result.depth_reduction(),
        result.gates_before,
        result.gates_after
    );
    assert!(
        circuits_equivalent(&circuit, &result.circuit, 1e-6),
        "ZX pass changed semantics"
    );

    // Partition the optimized circuit and synthesize one block with VUGs.
    let partition = greedy_partition(
        &result.circuit,
        PartitionConfig {
            max_qubits: 2,
            max_gates: 16,
        },
    );
    println!("=== partition: {} blocks ===", partition.len());
    for (i, block) in partition.blocks().iter().enumerate() {
        println!(
            "block {i}: qubits {:?}, {} gates, depth {}",
            block.qubits(),
            block.len(),
            block.circuit().depth()
        );
    }
    if let Some(block) = partition.blocks().iter().find(|b| b.n_qubits() == 2) {
        let synth = synthesize_or_fallback(
            &block.unitary(),
            block.circuit(),
            &SynthConfig::default(),
        )
        .expect("block unitary is well-formed");
        println!(
            "\nsynthesized 2-qubit block: {} gates -> {} VUG/CNOT ops \
             ({} CNOTs, distance {:.2e})",
            block.len(),
            synth.circuit.len(),
            synth.cnots,
            synth.distance
        );
        println!("{}", synth.circuit);
    }
}

//! Cancellation suite: deadlines fail typed, explicit cancel fails
//! typed, and deterministic work budgets degrade — byte-identically at
//! any worker count, including which recovery rungs were taken.
//!
//! The budget contract is the subtle one: budgets are counted in work
//! units (GRAPE Adam iterations, QSearch node evaluations) and charged
//! per block, so a budgeted compile is a pure function of the circuit —
//! never of machine speed or thread scheduling.

use epoc::{CompilationReport, EpocCompiler, EpocConfig, EpocError, StageTimings};
use epoc_rt::cancel::{Budget, CancelToken};
use std::time::Duration;

/// Report JSON with the (nondeterministic) wall-clock times zeroed.
fn normalized_json(mut r: CompilationReport) -> String {
    r.compile_time = Duration::ZERO;
    r.stages.timings = StageTimings::default();
    r.to_json()
}

/// GRAPE-exercising fixture (same shape the warm-cache suite uses).
fn fixture() -> epoc_circuit::Circuit {
    epoc_circuit::generators::qaoa(3, 1, 2)
}

fn config(workers: usize) -> EpocConfig {
    EpocConfig::with_grape(1).without_regrouping().with_workers(workers)
}

#[test]
fn inert_token_compiles_identically_to_plain_compile() {
    let circuit = fixture();
    let plain = EpocCompiler::new(config(2)).compile(&circuit).unwrap();
    let inert = EpocCompiler::new(config(2))
        .compile_with_cancel(&circuit, &CancelToken::default())
        .unwrap();
    assert_eq!(normalized_json(plain), normalized_json(inert));
}

#[test]
fn elapsed_deadline_fails_typed_before_any_work() {
    let circuit = fixture();
    let compiler = EpocCompiler::new(config(1));
    let token = CancelToken::default().with_deadline_ms(0);
    std::thread::sleep(Duration::from_millis(2));
    let err = compiler.compile_with_cancel(&circuit, &token).unwrap_err();
    assert!(
        matches!(err, EpocError::DeadlineExceeded),
        "expected DeadlineExceeded, got {err:?}"
    );
    assert!(err.to_string().contains("deadline"));
}

#[test]
fn raised_cancel_flag_fails_typed() {
    let circuit = fixture();
    let compiler = EpocCompiler::new(config(1));
    let token = CancelToken::new();
    token.cancel();
    let err = compiler.compile_with_cancel(&circuit, &token).unwrap_err();
    assert!(matches!(err, EpocError::Canceled), "expected Canceled, got {err:?}");
}

/// A starvation-level GRAPE budget forces the recovery ladder down to
/// the digital fallback — and the whole degraded outcome, recovery
/// rungs included, is byte-identical at 1, 2, and 4 workers.
#[test]
fn budget_degradation_is_byte_identical_at_any_worker_count() {
    let circuit = fixture();
    let budget = Budget { grape_iters: Some(2), qsearch_nodes: None };
    let mut reports = Vec::new();
    for workers in [1usize, 2, 4] {
        let compiler = EpocCompiler::new(config(workers));
        let token = CancelToken::default().with_budget(budget);
        let report = compiler.compile_with_cancel(&circuit, &token).unwrap();
        assert!(
            !report.stages.recoveries.is_empty(),
            "a 2-iteration GRAPE budget never climbed the recovery ladder at {workers} workers"
        );
        reports.push((workers, normalized_json(report)));
    }
    let (_, reference) = &reports[0];
    for (workers, json) in &reports[1..] {
        assert_eq!(
            reference, json,
            "budgeted outcome differs between workers=1 and workers={workers}"
        );
    }
}

/// The budget must actually bite: a budgeted compile reports fewer GRAPE
/// iterations than an unbudgeted one, and its recovery trail mentions
/// the GRAPE ladder.
#[test]
fn budget_caps_grape_work() {
    let circuit = fixture();
    let unbudgeted = EpocCompiler::new(config(1)).compile(&circuit).unwrap();
    assert!(unbudgeted.stages.grape_iterations > 0);
    let token = CancelToken::default()
        .with_budget(Budget { grape_iters: Some(2), qsearch_nodes: None });
    let budgeted = EpocCompiler::new(config(1))
        .compile_with_cancel(&circuit, &token)
        .unwrap();
    assert!(
        budgeted.stages.grape_iterations < unbudgeted.stages.grape_iterations,
        "budget did not reduce GRAPE work ({} vs {})",
        budgeted.stages.grape_iterations,
        unbudgeted.stages.grape_iterations
    );
}

/// Budget-degraded compiles never poison the persistent library: a
/// subsequent unbudgeted compile on the same compiler recomputes what
/// the budget degraded and matches an untouched reference compiler
/// byte-for-byte.
#[test]
fn budget_degraded_entries_do_not_poison_the_library() {
    let circuit = fixture();
    let reference = EpocCompiler::new(config(1)).compile(&circuit).unwrap();

    let compiler = EpocCompiler::new(config(1));
    let token = CancelToken::default()
        .with_budget(Budget { grape_iters: Some(2), qsearch_nodes: None });
    let degraded = compiler.compile_with_cancel(&circuit, &token).unwrap();
    assert!(!degraded.stages.recoveries.is_empty());

    let recovered = compiler.compile(&circuit).unwrap();
    assert!(
        recovered.stages.recoveries.is_empty(),
        "degraded entries leaked into the library: {:?}",
        recovered.stages.recoveries
    );
    // The recovered run hits cached full-quality entries where the
    // reference computed cold, so compare the schedules (the device
    // output), not the cost counters.
    assert_eq!(
        reference.schedule.to_json_value().to_string_compact(),
        recovered.schedule.to_json_value().to_string_compact(),
        "post-budget recompile produced a different schedule"
    );
    assert!(recovered.verified);
}

/// QSearch node budgets degrade softly too: the search stops expanding
/// and falls through, deterministically at any worker count.
#[test]
fn qsearch_budget_is_deterministic_across_workers() {
    let circuit = fixture();
    let budget = Budget { grape_iters: None, qsearch_nodes: Some(4) };
    let mut reports = Vec::new();
    for workers in [1usize, 4] {
        let compiler = EpocCompiler::new(config(workers));
        let token = CancelToken::default().with_budget(budget);
        let report = compiler.compile_with_cancel(&circuit, &token).unwrap();
        reports.push(normalized_json(report));
    }
    assert_eq!(reports[0], reports[1], "qsearch budget outcome depends on workers");
}

/// `epocc --deadline-ms 0` fails typed with a nonzero exit; `--budget`
/// compiles to success. The CLI rides the exact same token plumbing as
/// the service.
#[test]
fn epocc_deadline_and_budget_flags() {
    let exe = env!("CARGO_BIN_EXE_epocc");
    let out = std::process::Command::new(exe)
        .args(["--grape", "1", "--deadline-ms", "0", "bench:qaoa_n6"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "deadline 0 compile succeeded");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("deadline"), "no typed deadline error: {stderr}");

    let out = std::process::Command::new(exe)
        .args(["--grape", "1", "--budget", "grape_iters=2", "bench:qaoa_n6"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "budgeted compile failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = std::process::Command::new(exe)
        .args(["--budget", "warp_cores=9", "bench:ghz_n4"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "bad budget spec accepted");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown budget key"));
}

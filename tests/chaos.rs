//! Chaos suite: deterministic fault injection against the full pipeline.
//!
//! Every scenario arms `epoc_rt::faults` points inside the compiler's hot
//! path and asserts the contract of the recovery ladder: the compile
//! still produces a *verified* report, every climbed rung is recorded in
//! `stages.recoveries`, and the report bytes are identical at any worker
//! count — injected failures included.
//!
//! Fault state is process-global, so tests that arm points serialize on
//! one mutex and disarm on exit (even when the test panics). The CLI
//! tests spawn `epocc` subprocesses and need no serialization: each child
//! owns its own fault registry.

use epoc::qoc::{RUNG_GRAPE_DIGITAL, RUNG_GRAPE_RESTARTS, RUNG_GRAPE_SLOTS};
use epoc::sim::{SimError, SimOptions};
use epoc::{
    simulate_schedule, CompilationReport, EpocCompiler, EpocConfig, EpocError, RecoveryRecord,
    StageTimings, RUNG_HW_DIGITAL, RUNG_SCHEDULE_RECOMPUTE, RUNG_SYNTH_BUDGET,
    RUNG_SYNTH_FALLBACK,
};
use epoc_circuit::generators;
use epoc_rt::faults::{self, Trigger};
use std::process::Command;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Serializes fault-arming tests and guarantees a disarmed registry on
/// both entry and exit, whether the test passes or panics.
struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl FaultGuard {
    fn acquire() -> Self {
        static LOCK: Mutex<()> = Mutex::new(());
        let serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        faults::disarm_all();
        Self { _serial: serial }
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faults::disarm_all();
    }
}

/// The report JSON with the (nondeterministic) wall-clock times zeroed —
/// the same normalization the parallel-determinism suite uses.
fn normalized_json(mut r: CompilationReport) -> String {
    r.compile_time = Duration::ZERO;
    r.stages.timings = StageTimings::default();
    r.to_json()
}

fn rung_list(r: &CompilationReport) -> Vec<&'static str> {
    r.stages.recoveries.iter().map(|rec| rec.rung).collect()
}

/// The ISSUE acceptance scenario: a total failure storm — QSearch never
/// converges within budget, GRAPE never reaches its fidelity target —
/// still compiles to a verified report, records every ladder rung, and is
/// byte-identical at 1 and 4 workers.
#[test]
fn failure_storm_still_verifies_and_is_deterministic() {
    let _g = FaultGuard::acquire();
    faults::arm("grape.converge", Trigger::Always);
    faults::arm("qsearch.budget", Trigger::Always);
    // 2-qubit circuit: every synthesis block fits the QSearch width cap
    // and every regrouped block fits the GRAPE cap, so both ladders climb.
    let circuit = generators::random_circuit(2, 30, 0);
    let compile = |workers: usize| {
        let r = EpocCompiler::new(EpocConfig::with_grape(2).with_workers(workers))
            .compile(&circuit)
            .unwrap();
        assert!(r.verified, "storm compile at {workers} workers failed verification");
        assert!(r.schedule.is_valid(), "storm schedule overlaps at {workers} workers");
        r
    };
    let r1 = compile(1);
    let rungs = rung_list(&r1);
    assert!(!rungs.is_empty(), "storm climbed no recovery rungs");
    for expected in [
        RUNG_SYNTH_BUDGET,
        RUNG_SYNTH_FALLBACK,
        RUNG_GRAPE_RESTARTS,
        RUNG_GRAPE_SLOTS,
        RUNG_GRAPE_DIGITAL,
    ] {
        assert!(rungs.contains(&expected), "storm never climbed {expected}: {rungs:?}");
    }
    let r4 = compile(4);
    assert_eq!(
        normalized_json(r1),
        normalized_json(r4),
        "storm report differs between workers=1 and workers=4"
    );
}

/// A single injected QSearch budget exhaustion recovers on the first
/// escalation rung: exactly one `recovery.synth.budget` record, no
/// structural fallback, and a verified report.
#[test]
fn qsearch_budget_rung_recovers_single_flake() {
    let _g = FaultGuard::acquire();
    faults::arm("qsearch.budget", Trigger::NthHit(1));
    // ghz(2) partitions into a single 2-qubit block, so exactly one
    // QSearch call flakes and exactly one record lands.
    let r = EpocCompiler::new(EpocConfig::fast().with_workers(1))
        .compile(&generators::ghz(2))
        .unwrap();
    assert!(r.verified);
    assert_eq!(
        r.stages.recoveries,
        vec![RecoveryRecord {
            stage: "synth",
            subject: "blk0".into(),
            rung: RUNG_SYNTH_BUDGET,
        }],
        "expected exactly the budget rung"
    );
    assert_eq!(faults::fires("qsearch.budget"), 1);
}

/// When every pulse-library insert is dropped, deduplicated twin blocks
/// find neither a cached entry nor a precomputed one — the schedule stage
/// recomputes them in place and records `recovery.schedule.recompute`.
#[test]
fn lost_cache_inserts_recompute_in_place() {
    let _g = FaultGuard::acquire();
    faults::arm("pulse_lib.insert", Trigger::Always);
    // Per-gate pulses on a QAOA layer: the stream contains duplicate
    // 1-qubit unitaries, so dropped inserts strand their twins.
    let circuit = generators::qaoa(3, 1, 2);
    let r = EpocCompiler::new(
        EpocConfig::with_grape(1).without_regrouping().with_workers(1),
    )
    .compile(&circuit)
    .unwrap();
    assert!(r.verified);
    let recomputes = r
        .stages
        .recoveries
        .iter()
        .filter(|rec| rec.stage == "schedule" && rec.rung == RUNG_SCHEDULE_RECOMPUTE)
        .count();
    assert!(recomputes > 0, "no block was recomputed: {:?}", r.stages.recoveries);
    assert_eq!(r.stages.cache_hits, 0, "every insert was dropped, yet the cache hit");
}

/// Probabilistic fault storms draw keyed (order-independent) fates in the
/// parallel stages and counter-ordered fates only in serial ones, so even
/// a mixed storm is byte-deterministic across worker counts.
#[test]
fn probability_storm_deterministic_across_worker_counts() {
    let _g = FaultGuard::acquire();
    let circuit = generators::random_circuit(2, 30, 1);
    let compile = |workers: usize| {
        // Re-arm per run: re-arming resets the hit counters the serial
        // pulse-library points key their draws on.
        faults::disarm_all();
        faults::set_seed(0xC0FFEE);
        faults::arm("grape.converge", Trigger::Probability(0.5));
        faults::arm("qsearch.budget", Trigger::Probability(0.5));
        faults::arm("pulse_lib.miss", Trigger::Probability(0.3));
        faults::arm("pulse_lib.insert", Trigger::Probability(0.3));
        let r = EpocCompiler::new(EpocConfig::with_grape(2).with_workers(workers))
            .compile(&circuit)
            .unwrap();
        assert!(r.verified, "probability storm at {workers} workers failed verification");
        r
    };
    assert_eq!(
        normalized_json(compile(1)),
        normalized_json(compile(4)),
        "probability storm differs between workers=1 and workers=4"
    );
}

/// Strict mode trades the digital fallback for a typed error: an
/// exhausted GRAPE ladder surfaces as `EpocError::Schedule` naming the
/// failing block instead of a degraded-but-verified report.
#[test]
fn strict_mode_surfaces_typed_error() {
    let _g = FaultGuard::acquire();
    faults::arm("grape.converge", Trigger::Always);
    let err = EpocCompiler::new(EpocConfig::with_grape(2).strict().with_workers(1))
        .compile(&generators::bell_pair_prep())
        .unwrap_err();
    assert!(matches!(err, EpocError::Schedule(_)), "unexpected error: {err:?}");
    let msg = err.to_string();
    assert!(msg.contains("schedule") && msg.contains("block"), "undescriptive error: {msg}");
}

/// An injected propagation fault surfaces as a typed `SimError::Injected`
/// from the simulator instead of a panic.
#[test]
fn sim_propagate_injection_is_typed() {
    let _g = FaultGuard::acquire();
    // Compile with the harness disarmed so the schedule carries a real
    // GRAPE waveform for the propagator to chew on.
    let circuit = generators::bell_pair_prep();
    let r = EpocCompiler::new(
        EpocConfig::with_grape(1).without_regrouping().with_workers(1),
    )
    .compile(&circuit)
    .unwrap();
    assert!(r.verified);
    faults::arm("sim.propagate", Trigger::Always);
    let err = simulate_schedule(&circuit, &r.schedule, &SimOptions::default()).unwrap_err();
    assert_eq!(err, SimError::Injected { label: "sim.propagate" });
    faults::disarm("sim.propagate");
    assert!(simulate_schedule(&circuit, &r.schedule, &SimOptions::default()).is_ok());
}

/// A torn checkpoint: `pulse_lib.persist` truncates the library file
/// mid-write (and reports success, as a crashed process would). The
/// damage must be *detected on load* as a typed `EpocError::Library`,
/// and the compiler must degrade to a cold cache — recompute, verify,
/// and produce the exact cold-run report. Never a panic.
#[test]
fn torn_library_checkpoint_degrades_to_cold_cache() {
    let _g = FaultGuard::acquire();
    let circuit = generators::qaoa(3, 1, 2);
    let config =
        || EpocConfig::with_grape(1).without_regrouping().with_workers(1);
    let path = std::env::temp_dir().join(format!("epoc-chaos-torn-{}.json", std::process::id()));
    let cold_compiler = EpocCompiler::new(config());
    let cold = cold_compiler.compile(&circuit).unwrap();

    // Checkpoint under an armed persist fault: half the bytes land.
    faults::arm("pulse_lib.persist", Trigger::Always);
    cold_compiler.save_library(&path).unwrap();
    faults::disarm("pulse_lib.persist");

    // The restarted service detects the tear as a typed error…
    let restarted = EpocCompiler::new(config());
    let err = restarted.load_library(&path).unwrap_err();
    assert!(
        matches!(&err, EpocError::Library(epoc::LibraryError::Corrupt { .. })),
        "torn file not detected as corrupt: {err:?}"
    );
    assert!(err.to_string().contains("library"), "untyped message: {err}");

    // …and compiles cold: full misses, GRAPE re-run, same verified report.
    let warm_attempt = restarted.compile(&circuit).unwrap();
    assert!(warm_attempt.verified);
    assert!(warm_attempt.stages.cache_misses > 0, "cold cache somehow hit");
    assert!(warm_attempt.stages.grape_iterations > 0);
    assert_eq!(
        normalized_json(cold),
        normalized_json(warm_attempt),
        "cold-degraded report differs from a genuine cold run"
    );
    std::fs::remove_file(&path).ok();
}

/// A persist fault on one checkpoint must not poison the service: the
/// next (unfaulted) checkpoint overwrites the torn file with a good one,
/// and a restart warm-starts from it as if nothing happened.
#[test]
fn next_checkpoint_repairs_torn_library() {
    let _g = FaultGuard::acquire();
    let circuit = generators::qaoa(3, 1, 2);
    let config =
        || EpocConfig::with_grape(1).without_regrouping().with_workers(1);
    let path = std::env::temp_dir().join(format!("epoc-chaos-repair-{}.json", std::process::id()));
    let compiler = EpocCompiler::new(config());
    compiler.compile(&circuit).unwrap();
    faults::arm("pulse_lib.persist", Trigger::FirstHits(1));
    compiler.save_library(&path).unwrap(); // torn
    compiler.save_library(&path).unwrap(); // repaired
    let restarted = EpocCompiler::new(config());
    assert!(restarted.load_library(&path).unwrap() > 0);
    let warm = restarted.compile(&circuit).unwrap();
    assert_eq!(warm.stages.cache_misses, 0);
    assert_eq!(warm.stages.grape_iterations, 0);
    std::fs::remove_file(&path).ok();
}

/// `pulse_lib.insert` armed while *loading* models a partially lost
/// library: every restore is dropped, the load still reports success
/// (zero entries), and the compile runs cold — typed degradation at the
/// entry level, matching the live-insert semantics.
#[test]
fn insert_fault_during_load_degrades_to_cold_cache() {
    let _g = FaultGuard::acquire();
    let circuit = generators::qaoa(3, 1, 2);
    let config =
        || EpocConfig::with_grape(1).without_regrouping().with_workers(1);
    let path = std::env::temp_dir().join(format!("epoc-chaos-load-{}.json", std::process::id()));
    let compiler = EpocCompiler::new(config());
    compiler.compile(&circuit).unwrap();
    compiler.save_library(&path).unwrap();
    faults::arm("pulse_lib.insert", Trigger::Always);
    let restarted = EpocCompiler::new(config());
    assert_eq!(restarted.load_library(&path).unwrap(), 0, "dropped inserts were counted");
    faults::disarm("pulse_lib.insert");
    let r = restarted.compile(&circuit).unwrap();
    assert!(r.verified);
    assert!(r.stages.cache_misses > 0, "empty library somehow hit");
    std::fs::remove_file(&path).ok();
}

/// An injected `hw.condition` failure at schedule emission degrades the
/// affected block to the digital (exact-unitary) payload: the compile
/// still verifies, the `recovery.hw.digital` rung is recorded, the
/// hardware block counts fewer conditioned pulses than an unfaulted run,
/// and — the conditioning fate being drawn serially in block order — the
/// degraded report is byte-identical at any worker count.
#[test]
fn hw_condition_fault_falls_back_to_digital_payload() {
    let _g = FaultGuard::acquire();
    let circuit = generators::bell_pair_prep();
    let config = || {
        EpocConfig::with_grape(1)
            .without_regrouping()
            .with_hw(epoc::hw::HardwareProfile::transmon_awg_8bit())
    };
    let clean = EpocCompiler::new(config().with_workers(1)).compile(&circuit).unwrap();
    assert!(clean.verified);
    let clean_hw = clean.hardware.as_ref().expect("profile configured");
    assert!(clean_hw.conditioned_pulses > 0, "nothing was conditioned");

    let compile = |workers: usize| {
        faults::disarm_all();
        faults::arm("hw.condition", Trigger::NthHit(1));
        let r = EpocCompiler::new(config().with_workers(workers)).compile(&circuit).unwrap();
        assert!(r.verified, "hw-faulted compile at {workers} workers failed verification");
        r
    };
    let r1 = compile(1);
    let hw = r1.hardware.as_ref().expect("profile configured");
    assert_eq!(
        hw.conditioned_pulses,
        clean_hw.conditioned_pulses - 1,
        "degraded block still counted as conditioned"
    );
    let hw_rungs: Vec<&RecoveryRecord> = r1
        .stages
        .recoveries
        .iter()
        .filter(|rec| rec.stage == "hw" && rec.rung == RUNG_HW_DIGITAL)
        .collect();
    assert_eq!(hw_rungs.len(), 1, "expected one hw rung: {:?}", r1.stages.recoveries);
    // The degraded block replays as an exact unitary, so the schedule
    // still simulates (and trivially hits the digital payload's fidelity).
    assert!(
        simulate_schedule(&circuit, &r1.schedule, &SimOptions::default()).is_ok(),
        "degraded schedule no longer simulates"
    );
    let r4 = compile(4);
    assert_eq!(
        normalized_json(r1),
        normalized_json(r4),
        "hw-faulted report differs between workers=1 and workers=4"
    );
}

fn write_temp(name: &str, contents: &[u8]) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("epoc-chaos-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

/// Malformed input must exit nonzero with a one-line diagnostic — no
/// panic, no backtrace.
#[test]
fn epocc_fails_cleanly_on_malformed_qasm() {
    let exe = env!("CARGO_BIN_EXE_epocc");
    for (name, source) in [
        ("truncated.qasm", &b"OPENQASM 2.0;\nqreg q[2;\nh q[0];\n"[..]),
        ("binary.qasm", &b"\x00\xff\xfe\x01 bogus \x80\x80 h h h"[..]),
    ] {
        let path = write_temp(name, source);
        let out = Command::new(exe).arg(&path).output().unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!out.status.success(), "{name}: accepted malformed input");
        assert!(stderr.contains("error:"), "{name}: no diagnostic on stderr: {stderr}");
        assert!(!stderr.contains("panicked"), "{name}: panicked instead of erroring: {stderr}");
        std::fs::remove_file(&path).ok();
    }
}

/// An empty program is a valid program: the compile verifies, the
/// schedule is empty, and pulse-level simulation replays it perfectly.
#[test]
fn epocc_empty_circuit_simulate_succeeds() {
    let exe = env!("CARGO_BIN_EXE_epocc");
    let path = write_temp(
        "empty.qasm",
        b"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n",
    );
    let out = Command::new(exe)
        .args(["--simulate", "--json"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "empty circuit failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"verified\": true"), "not verified: {stdout}");
    assert!(stdout.contains("\"process_fidelity\": 1"), "imperfect replay: {stdout}");
    std::fs::remove_file(&path).ok();
}

/// The `--faults` CLI path: a storm-armed compile succeeds end to end and
/// its JSON report carries the climbed rungs.
#[test]
fn epocc_chaos_run_reports_recoveries() {
    let exe = env!("CARGO_BIN_EXE_epocc");
    let out = Command::new(exe)
        .args([
            "--faults",
            "grape.converge=always,qsearch.budget=always",
            "--fault-seed",
            "7",
            "--json",
            "bench:ghz_n8",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "chaos CLI run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(RUNG_GRAPE_DIGITAL),
        "report carries no grape fallback rung: {stdout}"
    );
    assert!(stdout.contains("\"verified\": true"), "chaos run not verified");
}

#[test]
fn epocc_rejects_bad_fault_spec() {
    let exe = env!("CARGO_BIN_EXE_epocc");
    let out = Command::new(exe)
        .args(["--faults", "x=zzz", "bench:ghz_n4"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --faults spec"));
}

//! Property-based tests for the partitioning and regrouping passes.

use epoc_circuit::{circuits_equivalent, generators};
use epoc_partition::{
    greedy_partition, paqoc_partition, regroup_to_blocks, PaqocConfig, PartitionConfig,
    RegroupConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn greedy_partition_invariants(
        n in 2usize..6,
        gates in 1usize..40,
        seed in 0u64..10_000,
        max_qubits in 2usize..5,
        max_gates in 1usize..20,
    ) {
        let c = generators::random_circuit(n, gates, seed);
        let p = greedy_partition(&c, PartitionConfig { max_qubits, max_gates });
        // Cover every gate exactly once.
        prop_assert_eq!(p.total_gates(), c.len());
        // Respect limits.
        for b in p.blocks() {
            prop_assert!(b.n_qubits() <= max_qubits);
            prop_assert!(b.len() <= max_gates);
            prop_assert!(!b.is_empty());
        }
        // Preserve semantics.
        prop_assert!(circuits_equivalent(&c, &p.to_circuit(), 1e-7));
    }

    #[test]
    fn paqoc_partition_invariants(
        n in 2usize..6,
        gates in 1usize..30,
        seed in 0u64..10_000,
    ) {
        let c = generators::random_circuit(n, gates, seed);
        let p = paqoc_partition(&c, PaqocConfig::default());
        prop_assert_eq!(p.total_gates(), c.len());
        prop_assert!(circuits_equivalent(&c, &p.to_circuit(), 1e-7));
        for b in p.blocks() {
            prop_assert!(b.n_qubits() <= 2);
        }
    }

    #[test]
    fn regroup_preserves_semantics(
        n in 2usize..5,
        gates in 1usize..30,
        seed in 0u64..10_000,
    ) {
        let c = generators::random_circuit(n, gates, seed);
        let (blocks, stats) = regroup_to_blocks(
            &c,
            RegroupConfig { max_qubits: 3, max_gates: 12 },
        );
        prop_assert!(circuits_equivalent(&c, &blocks, 1e-6));
        prop_assert!(stats.blocks_out <= stats.gates_in.max(1));
    }

    #[test]
    fn block_circuit_unitaries_compose(
        seed in 0u64..5_000,
    ) {
        // to_block_circuit (opaque matrices) equals the flattened gates.
        let c = generators::random_circuit(3, 15, seed);
        let p = greedy_partition(&c, PartitionConfig { max_qubits: 2, max_gates: 6 });
        prop_assert!(circuits_equivalent(&p.to_circuit(), &p.to_block_circuit(), 1e-6));
    }
}

#[test]
fn partition_benchmarks() {
    for b in generators::benchmark_suite() {
        let limit = b
            .circuit
            .ops()
            .iter()
            .map(|op| op.qubits.len())
            .max()
            .unwrap_or(1)
            .max(3);
        let p = greedy_partition(
            &b.circuit,
            PartitionConfig {
                max_qubits: limit,
                max_gates: 16,
            },
        );
        assert_eq!(p.total_gates(), b.circuit.len(), "{} lost gates", b.name);
        if b.circuit.n_qubits() <= 8 {
            assert!(
                circuits_equivalent(&b.circuit, &p.to_circuit(), 1e-7),
                "{} broken",
                b.name
            );
        }
    }
}

//! Property-based tests for the partitioning and regrouping passes.
//!
//! Ported from `proptest!` macros to `epoc_rt::check`, preserving the
//! 48-case counts.

use epoc_circuit::{circuits_equivalent, generators};
use epoc_partition::{
    greedy_partition, paqoc_partition, regroup_to_blocks, PaqocConfig, PartitionConfig,
    RegroupConfig,
};
use epoc_rt::check::property;

#[test]
fn greedy_partition_invariants() {
    property("greedy_partition_invariants").cases(48).run(|g| {
        let n = g.usize_in(2, 6);
        let gates = g.usize_in(1, 40);
        let seed = g.u64_in(0, 10_000);
        let max_qubits = g.usize_in(2, 5);
        let max_gates = g.usize_in(1, 20);
        let c = generators::random_circuit(n, gates, seed);
        let p = greedy_partition(&c, PartitionConfig { max_qubits, max_gates });
        // Cover every gate exactly once.
        assert_eq!(p.total_gates(), c.len());
        // Respect limits.
        for b in p.blocks() {
            assert!(b.n_qubits() <= max_qubits);
            assert!(b.len() <= max_gates);
            assert!(!b.is_empty());
        }
        // Preserve semantics.
        assert!(
            circuits_equivalent(&c, &p.to_circuit(), 1e-7),
            "n={n} gates={gates} seed={seed} max_qubits={max_qubits} max_gates={max_gates}"
        );
    });
}

#[test]
fn paqoc_partition_invariants() {
    property("paqoc_partition_invariants").cases(48).run(|g| {
        let n = g.usize_in(2, 6);
        let gates = g.usize_in(1, 30);
        let seed = g.u64_in(0, 10_000);
        let c = generators::random_circuit(n, gates, seed);
        let p = paqoc_partition(&c, PaqocConfig::default());
        assert_eq!(p.total_gates(), c.len());
        assert!(
            circuits_equivalent(&c, &p.to_circuit(), 1e-7),
            "n={n} gates={gates} seed={seed}"
        );
        for b in p.blocks() {
            assert!(b.n_qubits() <= 2);
        }
    });
}

#[test]
fn regroup_preserves_semantics() {
    property("regroup_preserves_semantics").cases(48).run(|g| {
        let n = g.usize_in(2, 5);
        let gates = g.usize_in(1, 30);
        let seed = g.u64_in(0, 10_000);
        let c = generators::random_circuit(n, gates, seed);
        let (blocks, stats) = regroup_to_blocks(
            &c,
            RegroupConfig { max_qubits: 3, max_gates: 12 },
        );
        assert!(
            circuits_equivalent(&c, &blocks, 1e-6),
            "n={n} gates={gates} seed={seed}"
        );
        assert!(stats.blocks_out <= stats.gates_in.max(1));
    });
}

#[test]
fn block_circuit_unitaries_compose() {
    property("block_circuit_unitaries_compose").cases(48).run(|g| {
        let seed = g.u64_in(0, 5_000);
        // to_block_circuit (opaque matrices) equals the flattened gates.
        let c = generators::random_circuit(3, 15, seed);
        let p = greedy_partition(&c, PartitionConfig { max_qubits: 2, max_gates: 6 });
        assert!(
            circuits_equivalent(&p.to_circuit(), &p.to_block_circuit(), 1e-6),
            "seed={seed}"
        );
    });
}

#[test]
fn partition_benchmarks() {
    for b in generators::benchmark_suite() {
        let limit = b
            .circuit
            .ops()
            .iter()
            .map(|op| op.qubits.len())
            .max()
            .unwrap_or(1)
            .max(3);
        let p = greedy_partition(
            &b.circuit,
            PartitionConfig {
                max_qubits: limit,
                max_gates: 16,
            },
        );
        assert_eq!(p.total_gates(), b.circuit.len(), "{} lost gates", b.name);
        if b.circuit.n_qubits() <= 8 {
            assert!(
                circuits_equivalent(&b.circuit, &p.to_circuit(), 1e-7),
                "{} broken",
                b.name
            );
        }
    }
}

//! Cross-crate integration tests: the full EPOC pipeline against the
//! baselines on the benchmark suite.

use epoc::baselines::{gate_based, PaqocCompiler};
use epoc::{EpocCompiler, EpocConfig};
use epoc_circuit::{circuits_equivalent, generators, Circuit, Gate};

fn fast_compiler() -> EpocCompiler {
    EpocCompiler::new(EpocConfig::fast())
}

#[test]
fn epoc_verifies_on_small_benchmarks() {
    let compiler = fast_compiler();
    for b in generators::benchmark_suite() {
        if b.circuit.n_qubits() > 6 {
            continue;
        }
        let r = compiler.compile(&b.circuit).unwrap();
        assert!(
            r.verified || r.verify_skipped,
            "{}: pipeline output not equivalent to input",
            b.name
        );
        assert!(r.schedule.is_valid(), "{}: overlapping pulses", b.name);
    }
}

#[test]
fn latency_ordering_epoc_paqoc_gate_based() {
    // The paper's headline: EPOC < PAQOC < gate-based, on total latency
    // across the Table-1 suite (individual circuits may vary).
    let epoc = fast_compiler();
    let paqoc = PaqocCompiler::default();
    let mut totals = (0.0, 0.0, 0.0);
    for b in generators::table1_suite() {
        let e = epoc.compile(&b.circuit).unwrap();
        let p = paqoc.compile(&b.circuit);
        let g = gate_based(&b.circuit);
        totals.0 += e.latency();
        totals.1 += p.latency();
        totals.2 += g.latency();
    }
    assert!(
        totals.0 < totals.1,
        "EPOC ({}) not faster than PAQOC ({})",
        totals.0,
        totals.1
    );
    assert!(
        totals.1 < totals.2,
        "PAQOC ({}) not faster than gate-based ({})",
        totals.1,
        totals.2
    );
}

#[test]
fn grouping_never_hurts_latency() {
    // Figure 8's claim: "in all of our benchmarks, the grouping latency is
    // shorter than the latency without grouping".
    let grouped = fast_compiler();
    let ungrouped = EpocCompiler::new(EpocConfig::fast().without_regrouping());
    for b in generators::benchmark_suite() {
        if b.circuit.n_qubits() > 6 {
            continue;
        }
        let g = grouped.compile(&b.circuit).unwrap();
        let u = ungrouped.compile(&b.circuit).unwrap();
        assert!(
            g.latency() <= u.latency() + 1e-9,
            "{}: grouped {} > ungrouped {}",
            b.name,
            g.latency(),
            u.latency()
        );
    }
}

#[test]
fn grouping_improves_esp() {
    // Figure 10: grouping raises the ESP fidelity.
    let grouped = fast_compiler();
    let ungrouped = EpocCompiler::new(EpocConfig::fast().without_regrouping());
    let mut wins = 0usize;
    let mut total = 0usize;
    for b in generators::benchmark_suite() {
        if b.circuit.n_qubits() > 6 {
            continue;
        }
        let g = grouped.compile(&b.circuit).unwrap();
        let u = ungrouped.compile(&b.circuit).unwrap();
        total += 1;
        if g.esp() >= u.esp() - 1e-12 {
            wins += 1;
        }
    }
    assert!(
        wins == total,
        "grouping lowered ESP on {}/{} benchmarks",
        total - wins,
        total
    );
}

#[test]
fn figure4_flow_bell_prep() {
    // The worked example of the paper: bell prep gets shallower through
    // ZX, survives partition+synthesis, and the whole flow verifies.
    let circuit = generators::bell_pair_prep();
    let r = fast_compiler().compile(&circuit).unwrap();
    assert!(r.verified);
    assert!(
        r.stages.zx_depth_after < r.stages.zx_depth_before,
        "ZX did not reduce Figure-4 circuit depth ({} -> {})",
        r.stages.zx_depth_before,
        r.stages.zx_depth_after
    );
    assert!(r.latency() < gate_based(&circuit).latency());
}

#[test]
fn qasm_import_through_pipeline() {
    let src = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[1];
cx q[1],q[2];
h q[2];
"#;
    let circuit = epoc_circuit::parse_qasm(src).expect("valid qasm");
    let r = fast_compiler().compile(&circuit).unwrap();
    assert!(r.verified);
    assert!(r.latency() > 0.0);
}

#[test]
fn deep_single_qubit_chain_collapses() {
    // 40 single-qubit rotations on one wire should fuse to very few
    // pulses after ZX + synthesis + regrouping.
    let mut c = Circuit::new(2);
    for i in 0..40 {
        c.push(Gate::RZ(0.1 + i as f64 * 0.05), &[0]);
        c.push(Gate::RX(0.2), &[0]);
    }
    c.push(Gate::CX, &[0, 1]);
    let r = fast_compiler().compile(&c).unwrap();
    assert!(r.verified);
    assert!(
        r.schedule.len() <= 6,
        "expected heavy aggregation, got {} pulses",
        r.schedule.len()
    );
}

#[test]
fn empty_and_trivial_circuits() {
    let compiler = fast_compiler();
    let empty = Circuit::new(3);
    let r = compiler.compile(&empty).unwrap();
    assert_eq!(r.latency(), 0.0);
    assert_eq!(r.esp(), 1.0);

    let mut single = Circuit::new(1);
    single.push(Gate::X, &[0]);
    let r = compiler.compile(&single).unwrap();
    assert!(r.verified);
    assert!(r.latency() > 0.0);
}

#[test]
fn zx_pass_helps_redundant_circuits() {
    // ZX should strip the redundancy so EPOC's latency on a padded
    // circuit matches the clean one.
    let clean = generators::ghz(3);
    let mut padded = Circuit::new(3);
    for op in clean.ops() {
        padded.push_op(op.clone());
        padded.push(Gate::Z, &[op.qubits[0]]);
        padded.push(Gate::Z, &[op.qubits[0]]);
    }
    assert!(circuits_equivalent(&clean, &padded, 1e-9));
    let compiler = fast_compiler();
    let rc = compiler.compile(&clean).unwrap();
    let rp = compiler.compile(&padded).unwrap();
    assert!(
        (rc.latency() - rp.latency()).abs() < 1e-6,
        "padding leaked into latency: {} vs {}",
        rc.latency(),
        rp.latency()
    );
}

#[test]
fn phase_aware_cache_beats_phase_sensitive() {
    // The §3.4 claim: global-phase-aware matching raises hit rate.
    use epoc_qoc::{KeyPolicy, PulseEntry, PulseLibrary};
    let aware = PulseLibrary::new(KeyPolicy::PhaseAware);
    let sensitive = PulseLibrary::new(KeyPolicy::PhaseSensitive);
    let entry = PulseEntry {
        duration: 20.0,
        fidelity: 0.999,
        n_slots: 10,
        waveform: None,
    };
    // RZ(θ) and Phase(θ) differ by a global phase only — a realistic
    // source of phase-twin unitaries in compiled streams.
    for theta in [0.3, 0.7, 1.1] {
        let rz = Gate::RZ(theta).unitary_matrix();
        let ph = Gate::Phase(theta).unitary_matrix();
        aware.insert(&rz, entry.clone());
        sensitive.insert(&rz, entry.clone());
        aware.lookup(&ph);
        sensitive.lookup(&ph);
    }
    assert!(aware.hit_rate() > sensitive.hit_rate());
    assert_eq!(aware.hits(), 3);
    assert_eq!(sensitive.hits(), 0);
}

#[test]
fn empty_circuit_compiles_to_empty_verified_schedule() {
    let r = fast_compiler().compile(&Circuit::new(3)).unwrap();
    assert!(r.verified, "empty circuit failed verification");
    assert_eq!(r.schedule.len(), 0);
    assert_eq!(r.latency(), 0.0);
    assert_eq!(r.esp(), 1.0);
    assert!(r.schedule.is_valid());
    assert!(r.stages.recoveries.is_empty());
}

#[test]
fn empty_circuit_simulates_perfectly() {
    use epoc::sim::SimOptions;
    let circuit = Circuit::new(3);
    let r = fast_compiler().compile(&circuit).unwrap();
    let sim = epoc::simulate_schedule(&circuit, &r.schedule, &SimOptions::default()).unwrap();
    assert!(
        (sim.outcome.process_fidelity - 1.0).abs() < 1e-12,
        "empty schedule does not replay as identity: {}",
        sim.outcome.process_fidelity
    );
}

#[test]
fn idle_qubits_do_not_break_schedule() {
    // Gates touch only the first two lines of a 4-qubit register: the
    // idle tail must not produce pulses or upset verification.
    let mut c = Circuit::new(4);
    c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
    let r = fast_compiler().compile(&c).unwrap();
    assert!(r.verified);
    assert!(r.schedule.is_valid());
    assert!(r
        .schedule
        .pulses()
        .iter()
        .all(|p| p.qubits.iter().all(|&q| q < 2)));
}

//! The parallel synthesis stage must not change results: a compilation
//! with 1 worker and with 4 workers produces byte-identical reports
//! (modulo wall-clock time) under a fixed seed.
//!
//! Telemetry is enabled for every compile here: recording spans and
//! counters must not perturb the deterministic report surface.

use epoc::{EpocCompiler, EpocConfig, StageTimings};
use epoc_circuit::generators;
use std::time::Duration;

/// Compiles `circuit` with the given worker count and returns the report
/// JSON with the (necessarily nondeterministic) wall-clock times zeroed —
/// `compile_time` and the per-stage `stages.timings`, which are
/// observability data, not part of the deterministic surface.
fn compile_json(circuit: &epoc_circuit::Circuit, workers: usize) -> String {
    epoc_rt::telemetry::enable();
    let compiler = EpocCompiler::new(EpocConfig::fast().with_workers(workers));
    let mut report = compiler.compile(circuit).unwrap();
    assert!(report.verified, "compilation with {workers} workers failed verification");
    report.compile_time = Duration::ZERO;
    report.stages.timings = StageTimings::default();
    report.to_json()
}

#[test]
fn pipeline_parallel_determinism() {
    // qaoa(4, 2, 5) partitions into enough blocks to actually exercise
    // cross-worker scheduling.
    let circuit = generators::qaoa(4, 2, 5);
    let sequential = compile_json(&circuit, 1);
    let parallel = compile_json(&circuit, 4);
    assert_eq!(
        sequential, parallel,
        "report differs between workers=1 and workers=4"
    );
}

#[test]
fn pipeline_parallel_determinism_random_circuits() {
    for seed in 0..3u64 {
        let circuit = generators::random_circuit(3, 14, seed);
        let sequential = compile_json(&circuit, 1);
        let parallel = compile_json(&circuit, 4);
        assert_eq!(sequential, parallel, "seed {seed} differs across worker counts");
    }
}

/// The parallel pulse stage must replay GRAPE cache effects exactly: with
/// a real hybrid backend (GRAPE on 1-qubit blocks, per-gate pulses so the
/// stream contains duplicate unitaries), the report — including the
/// cache hit/miss counters — is byte-identical at any worker count, both
/// on a cold cache and on a warm second compile.
#[test]
fn hybrid_grape_pulse_stage_deterministic() {
    let circuit = generators::qaoa(3, 1, 2);
    epoc_rt::telemetry::enable();
    let compile_twice = |workers: usize| -> (String, String) {
        let compiler = EpocCompiler::new(
            EpocConfig::with_grape(1)
                .without_regrouping()
                .with_workers(workers),
        );
        let mut cold = compiler.compile(&circuit).unwrap();
        let mut warm = compiler.compile(&circuit).unwrap();
        assert!(cold.verified && warm.verified);
        cold.compile_time = Duration::ZERO;
        warm.compile_time = Duration::ZERO;
        cold.stages.timings = StageTimings::default();
        warm.stages.timings = StageTimings::default();
        (cold.to_json(), warm.to_json())
    };
    assert_eq!(
        compile_twice(1),
        compile_twice(4),
        "hybrid GRAPE pulse stage differs across worker counts"
    );
}

/// The `--simulate` path with multiple noisy shots is part of the
/// deterministic report surface: with a fixed seed, the `simulation`
/// block (trajectory fidelities included) is byte-identical across
/// simulator worker counts, compiler worker counts, and repeat runs.
#[test]
fn simulation_shots_deterministic_across_worker_counts() {
    use epoc::sim::{NoiseModel, SimOptions};

    let circuit = generators::wstate(3);
    let sim_json = |compile_workers: usize, sim_workers: usize| -> String {
        let compiler =
            EpocCompiler::new(EpocConfig::with_grape(2).with_workers(compile_workers));
        let mut report = compiler.compile(&circuit).unwrap();
        assert!(report.verified);
        let opts = SimOptions {
            shots: 8,
            workers: sim_workers,
            noise: NoiseModel::standard(),
            ..SimOptions::default()
        };
        report.simulation =
            Some(epoc::simulate_schedule(&circuit, &report.schedule, &opts).unwrap());
        report.compile_time = Duration::ZERO;
        report.stages.timings = StageTimings::default();
        report.to_json()
    };
    let baseline = sim_json(1, 1);
    assert!(
        baseline.contains("\"trajectories\""),
        "simulation block missing from report JSON"
    );
    assert_eq!(
        baseline,
        sim_json(1, 4),
        "simulation differs across simulator worker counts"
    );
    assert_eq!(
        baseline,
        sim_json(4, 4),
        "simulation differs across compiler worker counts"
    );
    assert_eq!(baseline, sim_json(1, 1), "simulation differs across repeat runs");
}

#[test]
fn latency_and_esp_identical_across_worker_counts() {
    let circuit = generators::ghz(4);
    let r1 = EpocCompiler::new(EpocConfig::fast().with_workers(1)).compile(&circuit).unwrap();
    let r4 = EpocCompiler::new(EpocConfig::fast().with_workers(4)).compile(&circuit).unwrap();
    assert_eq!(r1.latency().to_bits(), r4.latency().to_bits());
    assert_eq!(r1.esp().to_bits(), r4.esp().to_bits());
    assert_eq!(r1.stages.synth_converged, r4.stages.synth_converged);
    assert_eq!(r1.stages.pulses, r4.stages.pulses);
}

/// Compiling under a hardware profile keeps the byte-determinism
/// contract: the report — conditioned waveforms, the `hardware` block,
/// and the constrained-GRAPE fidelities — is identical at 1, 2, and 4
/// workers, and the `ideal` profile reproduces the no-profile report
/// byte for byte (identity conditioning, cache-key scope 0).
#[test]
fn hardware_profile_deterministic_across_worker_counts() {
    let circuit = generators::qaoa(3, 1, 2);
    epoc_rt::telemetry::enable();
    let compile = |hw: Option<epoc::hw::HardwareProfile>, workers: usize| -> String {
        let mut config =
            EpocConfig::with_grape(1).without_regrouping().with_workers(workers);
        config.hw = hw;
        let mut report = EpocCompiler::new(config).compile(&circuit).unwrap();
        assert!(report.verified, "compile with {workers} workers failed verification");
        report.compile_time = Duration::ZERO;
        report.stages.timings = StageTimings::default();
        report.to_json()
    };

    let profile = epoc::hw::HardwareProfile::transmon_awg_8bit;
    let constrained = compile(Some(profile()), 1);
    assert!(
        constrained.contains("\"hardware\""),
        "report is missing the hardware block"
    );
    for workers in [2, 4] {
        assert_eq!(
            constrained,
            compile(Some(profile()), workers),
            "constrained report differs between workers=1 and workers={workers}"
        );
    }

    // The ideal profile differs from no profile only by its (reportable)
    // hardware block: stripping it recovers the no-profile bytes.
    let bare = compile(None, 1);
    let ideal = compile(Some(epoc::hw::HardwareProfile::ideal()), 4);
    let ideal_block = concat!(
        ",\n",
        "  \"hardware\": {\n",
        "    \"profile\": \"ideal\",\n",
        "    \"profile_hash\": \"0000000000000000\",\n",
        "    \"conditioned_pulses\": 0,\n",
        "    \"sfq\": false\n",
        "  }"
    );
    assert!(ideal.contains(ideal_block), "unexpected ideal hardware block:\n{ideal}");
    assert_eq!(
        bare,
        ideal.replace(ideal_block, ""),
        "ideal profile perturbed the report beyond its hardware block"
    );
}

//! The parallel QSearch frontier must not change results: the claim /
//! compute / replay scheme keeps every search decision in a serial phase,
//! so compilation reports — and the `qsearch.nodes` telemetry counter —
//! are byte-identical at any synthesis worker count. The same holds for
//! the linalg SIMD dispatch: the vector kernels are bit-identical to the
//! scalar path, so forcing either side must not move a single byte of the
//! report.

use epoc::{EpocCompiler, EpocConfig, StageTimings};
use epoc_circuit::generators;
use epoc_linalg::random_unitary;
use epoc_rt::rng::StdRng;
use epoc_synth::{synthesize, SynthConfig};
use std::time::Duration;

/// Compiles `circuit` with the given QSearch worker count and returns the
/// report JSON (wall-clock fields zeroed — observability data, not part of
/// the deterministic surface) plus how many search nodes the compile
/// instantiated.
fn compile_json(circuit: &epoc_circuit::Circuit, synth_workers: usize) -> (String, u64) {
    epoc_rt::telemetry::enable();
    let mut config = EpocConfig::fast();
    config.synth.workers = synth_workers;
    let compiler = EpocCompiler::new(config);
    let before = epoc_rt::telemetry::counter_value("qsearch.nodes");
    let mut report = compiler.compile(circuit).unwrap();
    let nodes = epoc_rt::telemetry::counter_value("qsearch.nodes") - before;
    assert!(
        report.verified,
        "compilation with {synth_workers} synthesis workers failed verification"
    );
    report.compile_time = Duration::ZERO;
    report.stages.timings = StageTimings::default();
    (report.to_json(), nodes)
}

#[test]
fn qsearch_report_and_node_count_identical_across_worker_counts() {
    // qaoa(4, 2, 5) partitions into enough 2-qubit blocks that the
    // synthesis stage genuinely runs multi-node searches.
    let circuit = generators::qaoa(4, 2, 5);
    let (base_json, base_nodes) = compile_json(&circuit, 1);
    assert!(base_nodes > 0, "compile ran no QSearch nodes at all");
    for workers in [2, 4] {
        let (json, nodes) = compile_json(&circuit, workers);
        assert_eq!(
            json, base_json,
            "report differs between synth workers=1 and workers={workers}"
        );
        assert_eq!(
            nodes, base_nodes,
            "qsearch.nodes counter differs between synth workers=1 and workers={workers}"
        );
    }
}

#[test]
fn direct_synthesis_identical_across_worker_counts() {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    let target = random_unitary(4, &mut rng);
    let run = |workers: usize| {
        synthesize(
            &target,
            &SynthConfig {
                workers,
                ..SynthConfig::default()
            },
        )
        .unwrap()
    };
    let base = run(1);
    for workers in [2, 4] {
        let r = run(workers);
        assert_eq!(r.circuit, base.circuit, "workers = {workers}");
        assert_eq!(
            r.distance.to_bits(),
            base.distance.to_bits(),
            "workers = {workers}"
        );
        assert_eq!(r.nodes_evaluated, base.nodes_evaluated, "workers = {workers}");
        assert_eq!(r.converged, base.converged, "workers = {workers}");
    }
}

#[test]
fn report_identical_across_simd_dispatch_paths() {
    // The AVX2 kernels mirror the scalar arithmetic operation-for-
    // operation, so the whole pipeline — including a parallel QSearch —
    // produces the same bytes whichever path the dispatcher picks. (On
    // hardware without AVX2 the force is refused and both runs take the
    // scalar path, which compares trivially equal.)
    let circuit = generators::qaoa(4, 2, 5);
    let compile_forced = |simd: bool| {
        epoc_linalg::force_simd(Some(simd));
        let out = compile_json(&circuit, 2);
        epoc_linalg::force_simd(None);
        out
    };
    let (scalar_json, scalar_nodes) = compile_forced(false);
    let (simd_json, simd_nodes) = compile_forced(true);
    assert_eq!(
        scalar_json, simd_json,
        "report differs between scalar and SIMD dispatch"
    );
    assert_eq!(scalar_nodes, simd_nodes, "node counts differ across dispatch paths");
}

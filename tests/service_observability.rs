//! Observability suite for the `epocd` service: job-scoped attribution,
//! gauges, percentiles, the structured JSONL log, and the live metrics
//! exposition — driven through the real binaries, the same way an
//! operator would see them.
//!
//! The invariant underneath all of it: telemetry is strictly off the
//! report path. These tests read *only* the observability artifacts;
//! report byte-determinism has its own suites
//! (`pipeline_parallel_determinism`, `telemetry_trace`).

use epoc_rt::json::Json;
use std::io::Write;
use std::process::{Command, Stdio};

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("epoc-obs-{}-{name}", std::process::id()))
}

/// Runs `epocd` with `extra_args`, feeding `input` on stdin; returns
/// (stdout, stderr).
fn run_epocd(extra_args: &[&str], input: &str) -> (String, String) {
    let exe = env!("CARGO_BIN_EXE_epocd");
    let mut child = Command::new(exe)
        .args(["--grape", "1", "--no-regroup", "--workers", "2"])
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(input.as_bytes()).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "epocd exited nonzero: {out:?}");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Extracts `stats` from a `{"ok":true,"stats":{...}}` response line.
fn parse_stats(line: &str) -> Json {
    let doc = Json::parse(line).unwrap_or_else(|e| panic!("bad stats line {line}: {e}"));
    doc.get("stats").cloned().unwrap_or_else(|| panic!("no stats object in {line}"))
}

fn as_u64(j: Option<&Json>) -> u64 {
    j.and_then(Json::as_f64).map(|f| f as u64).unwrap_or(0)
}

/// Two identical jobs through one daemon: `stats` must expose gauges,
/// latency percentiles, and per-job counter summaries that tell the two
/// jobs apart — job 1 paid the misses and the GRAPE time, job 2 rode the
/// cache — and the `metrics` command must expose the same story as
/// Prometheus text with `job="N"` labels and summary quantiles.
#[test]
fn epocd_stats_and_metrics_attribute_jobs() {
    let (stdout, _) = run_epocd(
        &[],
        concat!(
            r#"{"id":1,"bench":"qaoa_n6"}"#, "\n",
            r#"{"id":2,"bench":"qaoa_n6"}"#, "\n",
            r#"{"cmd":"stats"}"#, "\n",
            r#"{"cmd":"metrics"}"#, "\n",
            r#"{"cmd":"shutdown"}"#, "\n",
        ),
    );
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "expected 5 response lines: {stdout}");

    let stats = parse_stats(lines[2]);
    let gauges = stats.get("gauges").expect("stats.gauges missing");
    assert_eq!(as_u64(gauges.get("epocd.inflight_jobs")), 0, "inflight after both jobs done");
    assert!(as_u64(gauges.get("pulse_lib.entries")) > 0, "no library entries gauge");
    assert!(as_u64(gauges.get("pulse_lib.resident_bytes")) > 0, "no resident bytes gauge");
    assert_eq!(
        as_u64(gauges.get("pulse_lib.entries")),
        as_u64(stats.get("library_entries")),
        "entries gauge disagrees with the store's own count"
    );
    assert_eq!(
        as_u64(gauges.get("pulse_lib.resident_bytes")),
        as_u64(stats.get("library_bytes")),
        "resident-bytes gauge disagrees with the store's own accounting"
    );

    let lat = stats
        .get("percentiles")
        .and_then(|p| p.get("epocd.job_latency_ns"))
        .expect("no job-latency percentiles");
    assert_eq!(as_u64(lat.get("count")), 2);
    let (p50, p95, p99) = (as_u64(lat.get("p50")), as_u64(lat.get("p95")), as_u64(lat.get("p99")));
    assert!(p50 > 0 && p50 <= p95 && p95 <= p99, "bad quantile order: {p50} {p95} {p99}");

    let jobs = stats.get("jobs_by_id").expect("stats.jobs_by_id missing");
    let job1 = jobs.get("1").expect("job 1 summary missing");
    let job2 = jobs.get("2").expect("job 2 summary missing");
    assert!(as_u64(job1.get("pulse_lib.misses")) > 0, "job 1 (cold) shows no misses: {job1:?}");
    assert!(as_u64(job1.get("grape.iterations")) > 0, "job 1 (cold) shows no GRAPE work");
    assert_eq!(as_u64(job2.get("pulse_lib.misses")), 0, "job 2 (warm) shows misses: {job2:?}");
    assert_eq!(as_u64(job2.get("grape.iterations")), 0, "job 2 (warm) shows GRAPE work");
    assert!(as_u64(job2.get("pulse_lib.hits")) > 0, "job 2 (warm) shows no hits");

    let metrics = Json::parse(lines[3])
        .expect("metrics response is not JSON")
        .get("metrics")
        .and_then(Json::as_str)
        .expect("metrics response lacks the text field")
        .to_string();
    assert!(metrics.contains("# TYPE epoc_epocd_jobs counter"), "{metrics}");
    assert!(metrics.contains("epoc_epocd_jobs 2"), "{metrics}");
    assert!(metrics.contains("epoc_epocd_jobs{job=\"1\"} 1"), "{metrics}");
    assert!(metrics.contains("epoc_epocd_jobs{job=\"2\"} 1"), "{metrics}");
    assert!(metrics.contains("# TYPE epoc_pulse_lib_resident_bytes gauge"), "{metrics}");
    assert!(
        metrics.contains("epoc_epocd_job_latency_ns{quantile=\"0.99\"}"),
        "no p99 summary sample: {metrics}"
    );
    // Job 2 never missed: the per-job miss series must not name it.
    assert!(metrics.contains("epoc_pulse_lib_misses{job=\"1\"}"), "{metrics}");
    assert!(!metrics.contains("epoc_pulse_lib_misses{job=\"2\"}"), "{metrics}");
}

/// Cold→warm restart, watched through the observability surface: the
/// cold daemon's stats show misses and a populated library; the warm
/// daemon starts with the entries/resident-bytes gauges already loaded
/// and serves its job hit-only. Job ids restart with the process — both
/// logs attribute their lines to job 1.
#[test]
fn gauges_move_across_cold_warm_restart_and_jobs_hit_the_log() {
    let lib = temp_path("restart-lib.json");
    let cold_log = temp_path("cold.jsonl");
    let warm_log = temp_path("warm.jsonl");
    std::fs::remove_file(&lib).ok();

    let lib_s = lib.to_str().unwrap().to_string();
    let (cold_out, _) = run_epocd(
        &["--library", &lib_s, "--log", cold_log.to_str().unwrap()],
        concat!(
            r#"{"id":7,"bench":"qaoa_n6"}"#, "\n",
            r#"{"cmd":"stats"}"#, "\n",
            r#"{"cmd":"shutdown"}"#, "\n",
        ),
    );
    let cold_stats = parse_stats(cold_out.lines().nth(1).unwrap());
    let cold_entries = as_u64(cold_stats.get("library_entries"));
    assert!(cold_entries > 0);
    assert!(as_u64(cold_stats.get("cache_misses")) > 0, "cold run never missed");

    let (warm_out, stderr) = run_epocd(
        &["--library", &lib_s, "--log", warm_log.to_str().unwrap()],
        concat!(
            r#"{"cmd":"stats"}"#, "\n",
            r#"{"id":8,"bench":"qaoa_n6"}"#, "\n",
            r#"{"cmd":"stats"}"#, "\n",
            r#"{"cmd":"shutdown"}"#, "\n",
        ),
    );
    assert!(stderr.contains("warm-started"), "no warm start: {stderr}");
    let warm_lines: Vec<&str> = warm_out.lines().collect();
    // Before any job: the load already drove the resident gauges up.
    let preload = parse_stats(warm_lines[0]);
    let pre_gauges = preload.get("gauges").expect("gauges missing");
    assert_eq!(
        as_u64(pre_gauges.get("pulse_lib.entries")),
        cold_entries,
        "warm start did not restore the entries gauge"
    );
    assert!(as_u64(pre_gauges.get("pulse_lib.resident_bytes")) > 0);
    assert_eq!(as_u64(preload.get("cache_misses")), 0);
    // After the job: hits moved, misses did not.
    let after = parse_stats(warm_lines[2]);
    assert_eq!(as_u64(after.get("cache_misses")), 0, "warm daemon missed");
    assert!(as_u64(after.get("cache_hits")) > 0, "warm daemon never hit");

    // Both logs carry job-scoped lifecycle events for *their* job 1.
    for (path, req_id) in [(&cold_log, 7.0), (&warm_log, 8.0)] {
        let text = std::fs::read_to_string(path).unwrap();
        let entries: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
        let admitted = entries
            .iter()
            .find(|e| e.get("event").and_then(Json::as_str) == Some("job.admitted"))
            .unwrap_or_else(|| panic!("{}: no job.admitted", path.display()));
        assert_eq!(admitted.get("job").and_then(Json::as_f64), Some(1.0));
        assert_eq!(admitted.get("request_id").and_then(Json::as_f64), Some(req_id));
        let done = entries
            .iter()
            .find(|e| e.get("event").and_then(Json::as_str) == Some("job.done"))
            .unwrap_or_else(|| panic!("{}: no job.done", path.display()));
        assert_eq!(done.get("job").and_then(Json::as_f64), Some(1.0));
        assert!(
            entries.iter().any(|e| {
                e.get("event").and_then(Json::as_str) == Some("checkpoint.saved")
            }),
            "{}: checkpoint outcome never logged",
            path.display()
        );
    }
    // The cold log recorded misses for job 1; the warm log recorded none.
    let cold_done = std::fs::read_to_string(&cold_log).unwrap();
    assert!(cold_done.contains(r#""event":"job.done""#));
    let warm_done_line = std::fs::read_to_string(&warm_log)
        .unwrap()
        .lines()
        .find(|l| l.contains(r#""event":"job.done""#))
        .map(str::to_string)
        .unwrap();
    assert!(warm_done_line.contains(r#""cache_misses":0"#), "{warm_done_line}");

    std::fs::remove_file(&lib).ok();
    std::fs::remove_file(&cold_log).ok();
    std::fs::remove_file(&warm_log).ok();
}

/// `trace_check` accepts the real artifacts and rejects doctored ones —
/// the validator the CI `obs-smoke` step leans on must itself be tested.
#[test]
fn trace_check_validates_logs_and_metrics() {
    let check = env!("CARGO_BIN_EXE_trace_check");
    let log = temp_path("check.jsonl");
    let metrics_line = temp_path("check-metrics.json");

    let (stdout, _) = run_epocd(
        &["--log", log.to_str().unwrap()],
        concat!(
            r#"{"id":1,"bench":"ghz_n4"}"#, "\n",
            r#"{"cmd":"metrics"}"#, "\n",
            r#"{"cmd":"shutdown"}"#, "\n",
        ),
    );
    std::fs::write(&metrics_line, stdout.lines().nth(1).unwrap()).unwrap();

    let ok = Command::new(check)
        .args(["--require-jobs", "--log"])
        .arg(&log)
        .arg("--metrics")
        .arg(&metrics_line)
        .output()
        .unwrap();
    assert!(
        ok.status.success(),
        "trace_check rejected valid artifacts: {}",
        String::from_utf8_lossy(&ok.stderr)
    );

    // A log whose lines never carry a job id must fail --require-jobs.
    let jobless = temp_path("jobless.jsonl");
    std::fs::write(
        &jobless,
        "{\"ts_ns\":1,\"level\":\"info\",\"event\":\"batch.begin\",\"size\":1}\n",
    )
    .unwrap();
    let bad = Command::new(check).args(["--require-jobs", "--log"]).arg(&jobless).output().unwrap();
    assert!(!bad.status.success(), "trace_check accepted a job-free log");

    // Truncated exposition (no samples) must fail.
    let empty = temp_path("empty.prom");
    std::fs::write(&empty, "# TYPE epoc_x counter\n").unwrap();
    let bad = Command::new(check).arg("--metrics").arg(&empty).output().unwrap();
    assert!(!bad.status.success(), "trace_check accepted a sample-free exposition");

    std::fs::remove_file(&log).ok();
    std::fs::remove_file(&metrics_line).ok();
    std::fs::remove_file(&jobless).ok();
    std::fs::remove_file(&empty).ok();
}

/// `epocc --metrics-file` writes a standalone Prometheus exposition that
/// `trace_check --metrics` accepts (one-shot compiles carry no job ids,
/// so no `--require-jobs` here — that's the daemon's dimension).
#[test]
fn epocc_metrics_file_is_valid_exposition() {
    let epocc = env!("CARGO_BIN_EXE_epocc");
    let check = env!("CARGO_BIN_EXE_trace_check");
    let path = temp_path("epocc.prom");
    let out = Command::new(epocc)
        .args(["--grape", "0", "--metrics-file"])
        .arg(&path)
        .arg("bench:ghz_n4")
        .output()
        .unwrap();
    assert!(out.status.success(), "epocc failed: {out:?}");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("# TYPE epoc_pulse_lib_misses counter"), "{text}");
    assert!(text.contains("quantile=\"0.5\""), "no summary quantiles: {text}");
    let ok = Command::new(check).arg("--metrics").arg(&path).output().unwrap();
    assert!(
        ok.status.success(),
        "trace_check rejected epocc metrics: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    std::fs::remove_file(&path).ok();
}

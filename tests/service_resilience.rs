//! Service-resilience suite: the write-ahead journal (property-tested
//! replay, torn-tail recovery at every truncation offset, kill -9
//! losslessness) and epocd's admission control, panic isolation, and
//! graceful shutdown drain.

use epoc_circuit::Gate;
use epoc_qoc::{
    replay_journal, save_library_file, JournalWriter, KeyPolicy, PulseEntry, PulseLibrary,
};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("epoc-resilience-{}-{name}", std::process::id()))
}

fn entry(duration: f64, fidelity: f64, n_slots: usize) -> PulseEntry {
    PulseEntry { duration, fidelity, n_slots, waveform: None }
}

/// Replaying a journal reproduces the library that wrote it, for random
/// insert sequences (repeated keys overwrite, in both worlds). The
/// comparison is the canonical persisted file — byte equality, not just
/// entry counts.
#[test]
fn replayed_journal_reproduces_the_library() {
    epoc_rt::check::property("journal replay == direct inserts")
        .cases(24)
        .run(|g| {
            let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
            let path = temp_path("prop.jsonl");
            std::fs::remove_file(&path).ok();
            let journal = std::sync::Arc::new(JournalWriter::open_append(&path).unwrap());
            let sink = std::sync::Arc::clone(&journal);
            lib.set_insert_observer(Some(std::sync::Arc::new(move |key, e| {
                sink.append("grape", key, e).unwrap();
            })));
            let n = g.usize_in(1, 12);
            for _ in 0..n {
                // A small pool of distinct unitaries so overwrites occur.
                let u = match g.usize_in(0, 4) {
                    0 => Gate::H.unitary_matrix(),
                    1 => Gate::X.unitary_matrix(),
                    2 => Gate::Sx.unitary_matrix(),
                    3 => Gate::RZ(0.375).unitary_matrix(),
                    _ => Gate::RZ(1.5).unitary_matrix(),
                };
                let dur = g.f64_in(10.0, 500.0).round();
                lib.insert(&u, entry(dur, 0.999, dur as usize));
            }
            journal.sync().unwrap();

            let restored = PulseLibrary::new(KeyPolicy::PhaseAware);
            let applied = replay_journal(&path, &[("grape", &restored)]).unwrap();
            assert_eq!(applied, n, "every journaled insert must apply");
            assert_eq!(restored.len(), lib.len());

            let file_a = temp_path("prop-a.json");
            let file_b = temp_path("prop-b.json");
            save_library_file(&file_a, &[("grape", &lib)]).unwrap();
            save_library_file(&file_b, &[("grape", &restored)]).unwrap();
            assert_eq!(
                std::fs::read_to_string(&file_a).unwrap(),
                std::fs::read_to_string(&file_b).unwrap(),
                "replayed library differs from the original"
            );
            for p in [&path, &file_a, &file_b] {
                std::fs::remove_file(p).ok();
            }
        });
}

/// Truncating the journal at EVERY byte offset — simulating a crash at
/// any point of an append — always recovers the longest prefix of fully
/// written records, and never errors: a torn tail is expected damage,
/// not corruption.
#[test]
fn truncation_at_every_offset_recovers_the_prefix() {
    let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
    let path = temp_path("trunc-src.jsonl");
    std::fs::remove_file(&path).ok();
    let journal = JournalWriter::open_append(&path).unwrap();
    let unitaries = [
        Gate::H.unitary_matrix(),
        Gate::X.unitary_matrix(),
        Gate::Sx.unitary_matrix(),
    ];
    for (i, u) in unitaries.iter().enumerate() {
        journal.append("grape", &lib.cache_key(u), &entry(20.0 + i as f64, 0.999, 16)).unwrap();
    }
    journal.sync().unwrap();
    let bytes = std::fs::read(&path).unwrap();
    // Record boundaries: byte offsets just past each newline.
    let boundaries: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| (b == b'\n').then_some(i + 1))
        .collect();
    assert_eq!(boundaries.len(), 3);

    let cut_path = temp_path("trunc-cut.jsonl");
    for cut in 0..=bytes.len() {
        std::fs::write(&cut_path, &bytes[..cut]).unwrap();
        let restored = PulseLibrary::new(KeyPolicy::PhaseAware);
        let applied = replay_journal(&cut_path, &[("grape", &restored)])
            .unwrap_or_else(|e| panic!("cut at {cut}: replay errored: {e}"));
        // Complete records in the prefix: every boundary <= cut, plus a
        // tail that is a whole record merely missing its newline (cut
        // exactly one byte short of a boundary).
        let whole = boundaries.iter().filter(|&&b| b <= cut).count();
        let tail_is_whole_record = boundaries.contains(&(cut + 1));
        let expected = whole + usize::from(tail_is_whole_record);
        assert_eq!(applied, expected, "cut at {cut} applied the wrong record count");
        assert_eq!(restored.len(), expected, "cut at {cut}: wrong library size");
        // Replay is idempotent after its own truncation repair.
        let again = PulseLibrary::new(KeyPolicy::PhaseAware);
        assert_eq!(replay_journal(&cut_path, &[("grape", &again)]).unwrap(), expected);
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&cut_path).ok();
}

/// Spawns epocd reading from a pipe, returning the child plus its stdin
/// and a buffered reader over its stdout.
fn spawn_epocd(args: &[&str]) -> (Child, std::process::ChildStdin, BufReader<std::process::ChildStdout>) {
    let exe = env!("CARGO_BIN_EXE_epocd");
    let mut child = Command::new(exe)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let stdin = child.stdin.take().unwrap();
    let stdout = BufReader::new(child.stdout.take().unwrap());
    (child, stdin, stdout)
}

/// `kill -9` mid-batch loses zero completed inserts: the journaled
/// library fully reconstructs on restart — the warm job misses nothing
/// and runs zero GRAPE iterations, with no checkpoint ever written.
#[test]
fn kill_nine_mid_batch_loses_no_completed_inserts() {
    let lib = temp_path("kill9-lib.json");
    let journal = temp_path("kill9-journal.jsonl");
    std::fs::remove_file(&lib).ok();
    std::fs::remove_file(&journal).ok();
    let lib_s = lib.to_str().unwrap();
    let journal_s = journal.to_str().unwrap();

    let (mut child, mut stdin, mut stdout) = spawn_epocd(&[
        "--grape", "1", "--no-regroup", "--library", lib_s, "--journal", journal_s,
    ]);
    writeln!(stdin, r#"{{"id":1,"bench":"qaoa_n6"}}"#).unwrap();
    stdin.flush().unwrap();
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    assert!(line.contains(r#""ok":true"#), "cold job failed: {line}");
    // The job answered; its inserts are in the journal. Kill the daemon
    // before any checkpoint (stdin stays open, so no EOF checkpoint).
    child.kill().unwrap();
    child.wait().unwrap();
    assert!(!lib.exists(), "a checkpoint ran — the test would prove nothing");
    assert!(journal.exists() && journal.metadata().unwrap().len() > 0, "journal is empty");

    let (child, mut stdin, mut stdout) = spawn_epocd(&[
        "--grape", "1", "--no-regroup", "--library", lib_s, "--journal", journal_s,
    ]);
    writeln!(stdin, r#"{{"id":2,"bench":"qaoa_n6"}}"#).unwrap();
    writeln!(stdin, r#"{{"cmd":"shutdown"}}"#).unwrap();
    drop(stdin);
    let mut warm = String::new();
    stdout.read_line(&mut warm).unwrap();
    assert!(warm.contains(r#""ok":true"#), "warm job failed: {warm}");
    assert!(
        warm.contains(r#""cache_misses":0"#),
        "journal replay lost completed inserts: {warm}"
    );
    assert!(
        warm.contains(r#""grape_iterations":0"#),
        "warm restart re-ran GRAPE: {warm}"
    );
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("replayed"), "no journal replay reported: {stderr}");
    // Shutdown checkpointed, which compacts the journal.
    assert!(lib.exists());
    assert_eq!(journal.metadata().unwrap().len(), 0, "checkpoint did not compact");
    std::fs::remove_file(&lib).ok();
    std::fs::remove_file(&journal).ok();
}

/// `--queue-limit 1` under a burst: the in-flight job completes, the
/// burst behind it gets typed `queue_full` rejections, commands stay
/// exempt, and the stats line accounts for every rejection.
#[test]
fn queue_limit_sheds_typed_rejections() {
    let exe = env!("CARGO_BIN_EXE_epocd");
    let mut child = Command::new(exe)
        .args(["--grape", "1", "--queue-limit", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    for i in 1..=4 {
        writeln!(stdin, r#"{{"id":{i},"bench":"qaoa_n6"}}"#).unwrap();
    }
    writeln!(stdin, r#"{{"cmd":"stats"}}"#).unwrap();
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "expected 5 response lines: {stdout}");
    let ok = lines.iter().filter(|l| l.contains(r#""ok":true,"report""#)).count();
    let shed = lines.iter().filter(|l| l.contains(r#""rejected":"queue_full""#)).count();
    assert!(ok >= 1, "no job completed under the flood: {stdout}");
    assert!(shed >= 1, "queue limit 1 never shed under a 4-job burst: {stdout}");
    assert_eq!(ok + shed, 4, "jobs neither completed nor typed-rejected: {stdout}");
    let stats = lines.last().unwrap();
    assert!(
        stats.contains(&format!(r#""rejected":{shed}"#)),
        "stats disagree with shed count {shed}: {stats}"
    );
}

/// An oversized request line is shed with a typed rejection and the
/// daemon keeps serving the next (well-sized) job.
#[test]
fn oversized_line_is_rejected_not_fatal() {
    let exe = env!("CARGO_BIN_EXE_epocd");
    let mut child = Command::new(exe)
        .args(["--grape", "0", "--line-limit", "256"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    let big = format!(r#"{{"id":1,"qasm":"{}"}}"#, "x".repeat(1000));
    writeln!(stdin, "{big}").unwrap();
    writeln!(stdin, r#"{{"id":2,"bench":"ghz_n4"}}"#).unwrap();
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "expected 2 response lines: {stdout}");
    assert!(
        lines[0].contains(r#""rejected":"oversized""#),
        "no typed oversized rejection: {}",
        lines[0]
    );
    assert!(
        lines[1].contains(r#""id":2"#) && lines[1].contains(r#""ok":true"#),
        "daemon did not survive the oversized line: {}",
        lines[1]
    );
}

/// A panicking job (injected via the `epocd.panic` fault point) answers
/// as a typed failure and the daemon keeps serving.
#[test]
fn panicking_job_fails_typed_daemon_survives() {
    let exe = env!("CARGO_BIN_EXE_epocd");
    let mut child = Command::new(exe)
        .args(["--grape", "0", "--faults", "epocd.panic=n1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    writeln!(stdin, r#"{{"id":1,"bench":"ghz_n4"}}"#).unwrap();
    writeln!(stdin, r#"{{"id":2,"bench":"ghz_n4"}}"#).unwrap();
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "daemon died with the panicking job");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "expected 2 response lines: {stdout}");
    assert!(
        lines[0].contains(r#""ok":false"#) && lines[0].contains("panicked"),
        "panic not surfaced as a typed failure: {}",
        lines[0]
    );
    assert!(
        lines[1].contains(r#""id":2"#) && lines[1].contains(r#""ok":true"#),
        "daemon did not keep serving after the panic: {}",
        lines[1]
    );
}

/// Jobs queued behind a `shutdown` are shed with typed `shutting_down`
/// rejections — never silently dropped.
#[test]
fn shutdown_drains_queued_jobs_with_typed_rejections() {
    let exe = env!("CARGO_BIN_EXE_epocd");
    let mut child = Command::new(exe)
        .args(["--grape", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    // Job 1 is slow enough that shutdown and job 2 queue up behind it.
    writeln!(stdin, r#"{{"id":1,"bench":"qaoa_n6"}}"#).unwrap();
    writeln!(stdin, r#"{{"cmd":"shutdown"}}"#).unwrap();
    writeln!(stdin, r#"{{"id":2,"bench":"qaoa_n6"}}"#).unwrap();
    // Keep stdin open: the drain must come from shutdown, not EOF.
    let out_handle = std::thread::spawn(move || child.wait_with_output().unwrap());
    let out = out_handle.join().unwrap();
    drop(stdin);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "expected 3 response lines: {stdout}");
    assert!(lines[0].contains(r#""id":1"#) && lines[0].contains(r#""ok":true"#));
    assert!(lines[1].contains(r#""ok":true"#), "shutdown ack missing: {}", lines[1]);
    assert!(
        lines[2].contains(r#""id":2"#) && lines[2].contains(r#""rejected":"shutting_down""#),
        "queued job was not typed-rejected on drain: {}",
        lines[2]
    );
}

//! Cross-run pulse-cache suite: persisting the library, restarting the
//! store, and recompiling must turn every pulse-stage lookup into a hit —
//! zero GRAPE iterations, byte-identical reports — at any worker count.
//!
//! This is the acceptance contract of the `epocd` service: the warm path
//! is what makes a long-running compiler amortize GRAPE across jobs and
//! across restarts.

use epoc::{CompilationReport, EpocCompiler, EpocConfig, StageTimings, StoreConfig};
use epoc_circuit::generators;
use std::io::Write;
use std::process::{Command, Stdio};
use std::time::Duration;

/// The report JSON with the (nondeterministic) wall-clock times zeroed —
/// the same normalization the parallel-determinism suite uses.
fn normalized_json(mut r: CompilationReport) -> String {
    r.compile_time = Duration::ZERO;
    r.stages.timings = StageTimings::default();
    r.to_json()
}

/// The fixture circuit: per-gate pulses on a QAOA layer, GRAPE on the
/// 1-qubit stream (cheap, with duplicate unitaries) and the model on the
/// 2-qubit gates — both sub-libraries get entries.
fn fixture() -> epoc_circuit::Circuit {
    generators::qaoa(3, 1, 2)
}

fn config(workers: usize) -> EpocConfig {
    EpocConfig::with_grape(1).without_regrouping().with_workers(workers)
}

fn temp_lib(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("epoc-warm-{}-{name}.json", std::process::id()))
}

/// Compile → persist → restart (a brand-new compiler, i.e. a cold store)
/// → load → recompile. The warm run must do zero GRAPE iterations, miss
/// nothing, and produce byte-identical reports at 1 and 4 workers — and
/// match the in-process warm compile (a disk round-trip is invisible).
#[test]
fn warm_restart_hits_everything_at_any_worker_count() {
    let circuit = fixture();
    let path = temp_lib("restart");
    let mut warm_reports = Vec::new();
    for workers in [1usize, 4] {
        // Cold service run: compile once, checkpoint the library.
        let cold_compiler = EpocCompiler::new(config(workers));
        let cold = cold_compiler.compile(&circuit).unwrap();
        assert!(cold.verified);
        assert!(
            cold.stages.grape_iterations > 0,
            "fixture never exercised GRAPE — warm assertions would be vacuous"
        );
        assert!(cold.stages.cache_misses > 0);
        cold_compiler.save_library(&path).unwrap();
        // The in-process warm compile is the reference the disk round
        // trip must be indistinguishable from.
        let warm_ref = cold_compiler.compile(&circuit).unwrap();

        // Restarted service run: new compiler, library loaded from disk.
        let warm_compiler = EpocCompiler::new(config(workers));
        let loaded = warm_compiler.load_library(&path).unwrap();
        assert!(loaded > 0, "nothing restored from {}", path.display());
        assert_eq!(loaded, cold_compiler.library_len());
        let warm = warm_compiler.compile(&circuit).unwrap();
        assert!(warm.verified);
        assert_eq!(warm.stages.cache_misses, 0, "warm run missed at {workers} workers");
        assert_eq!(
            warm.stages.grape_iterations, 0,
            "warm run re-ran GRAPE at {workers} workers"
        );
        assert_eq!(warm.stages.cache_hits, warm_ref.stages.cache_hits);
        let warm_json = normalized_json(warm);
        assert_eq!(
            normalized_json(warm_ref),
            warm_json,
            "disk round-trip changed the warm report at {workers} workers"
        );
        warm_reports.push(warm_json);
    }
    let w4 = warm_reports.pop().unwrap();
    let w1 = warm_reports.pop().unwrap();
    assert_eq!(w1, w4, "warm report differs between workers=1 and workers=4");
    std::fs::remove_file(&path).ok();
}

/// The pulse *schedule* (what actually reaches the device) is identical
/// between the cold and warm runs: a cache round trip through disk
/// changes cost, never output.
#[test]
fn warm_schedule_matches_cold_schedule() {
    let circuit = fixture();
    let path = temp_lib("schedule");
    let cold_compiler = EpocCompiler::new(config(1));
    let cold = cold_compiler.compile(&circuit).unwrap();
    cold_compiler.save_library(&path).unwrap();
    let warm_compiler = EpocCompiler::new(config(1));
    warm_compiler.load_library(&path).unwrap();
    let warm = warm_compiler.compile(&circuit).unwrap();
    assert_eq!(
        cold.schedule.to_json_value().to_string_compact(),
        warm.schedule.to_json_value().to_string_compact(),
        "warm schedule differs from cold schedule"
    );
    std::fs::remove_file(&path).ok();
}

/// Persistence is tier-agnostic: a sharded, byte-budgeted service store
/// (the `epocd` default shape) round-trips through disk and warm-hits
/// exactly like the plain map, as long as the budget holds the workload.
#[test]
fn budgeted_sharded_tier_survives_restart() {
    let circuit = fixture();
    let path = temp_lib("budgeted");
    let store = StoreConfig { shards: 4, budget_bytes: Some(1 << 20) };
    let cold_compiler = EpocCompiler::new(config(1).with_store(store));
    let cold = cold_compiler.compile(&circuit).unwrap();
    assert!(cold.verified);
    assert_eq!(cold_compiler.library_evictions(), 0, "1 MiB budget evicted the fixture");
    cold_compiler.save_library(&path).unwrap();
    let warm_compiler = EpocCompiler::new(config(1).with_store(store));
    warm_compiler.load_library(&path).unwrap();
    let warm = warm_compiler.compile(&circuit).unwrap();
    assert_eq!(warm.stages.cache_misses, 0);
    assert_eq!(warm.stages.grape_iterations, 0);
    std::fs::remove_file(&path).ok();
}

/// A starvation-level byte budget forces evictions mid-workload; evicted
/// entries simply recompute on their next lookup, so the compile still
/// verifies and emits the exact same schedule as an unbounded cache — a
/// too-small budget costs time, never correctness.
#[test]
fn evicted_entries_recompute_on_next_lookup() {
    let circuit = fixture();
    let unbounded = EpocCompiler::new(config(1));
    let reference = unbounded.compile(&circuit).unwrap();
    // ~one small entry of budget: nearly every insert evicts something.
    let starved = EpocCompiler::new(
        config(1).with_store(StoreConfig { shards: 1, budget_bytes: Some(512) }),
    );
    let r = starved.compile(&circuit).unwrap();
    assert!(r.verified);
    assert!(starved.library_evictions() > 0, "512-byte budget never evicted");
    assert_eq!(
        reference.schedule.to_json_value().to_string_compact(),
        r.schedule.to_json_value().to_string_compact(),
        "eviction pressure changed the schedule"
    );
    // Determinism holds under eviction pressure too: the library is only
    // touched from serial pipeline phases, so the LRU clock — and thus
    // the hit/miss/recompute pattern — is identical at any worker count.
    let starved4 = EpocCompiler::new(
        config(4).with_store(StoreConfig { shards: 1, budget_bytes: Some(512) }),
    );
    let r4 = starved4.compile(&circuit).unwrap();
    assert_eq!(normalized_json(r), normalized_json(r4));
}

/// Saving the same library twice — including from a restarted store with
/// a different shard layout — produces byte-identical files: persistence
/// is canonical, so checkpoints are reproducible artifacts.
#[test]
fn library_files_are_byte_deterministic() {
    let circuit = fixture();
    let path_a = temp_lib("bytes-a");
    let path_b = temp_lib("bytes-b");
    let compiler = EpocCompiler::new(config(1));
    compiler.compile(&circuit).unwrap();
    compiler.save_library(&path_a).unwrap();
    // Restart into a different shard layout and re-save.
    let restarted = EpocCompiler::new(
        config(4).with_store(StoreConfig { shards: 8, budget_bytes: None }),
    );
    restarted.load_library(&path_a).unwrap();
    restarted.save_library(&path_b).unwrap();
    assert_eq!(
        std::fs::read_to_string(&path_a).unwrap(),
        std::fs::read_to_string(&path_b).unwrap(),
        "library file bytes depend on the storage layout"
    );
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}

/// Drives the `epocd` binary itself: jobs piped on stdin, one report line
/// each, and the library persisting across a *process* restart. The
/// second process must warm-start from disk and answer with zero misses
/// and zero GRAPE iterations.
#[test]
fn epocd_process_restart_serves_warm_cache() {
    let exe = env!("CARGO_BIN_EXE_epocd");
    let path = temp_lib("epocd");
    std::fs::remove_file(&path).ok();
    let run = |jobs: &str| -> (String, String) {
        let mut child = Command::new(exe)
            .args(["--grape", "1", "--no-regroup", "--workers", "2", "--library"])
            .arg(&path)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        child.stdin.take().unwrap().write_all(jobs.as_bytes()).unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "epocd exited nonzero: {out:?}");
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };

    // Cold process: two identical jobs — the second already hits the
    // in-process cache — then explicit stats and shutdown.
    let (stdout, _) = run(concat!(
        r#"{"id":1,"bench":"qaoa_n6"}"#, "\n",
        r#"{"id":2,"bench":"qaoa_n6"}"#, "\n",
        r#"{"cmd":"stats"}"#, "\n",
        r#"{"cmd":"shutdown"}"#, "\n",
    ));
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "expected 4 response lines: {stdout}");
    assert!(lines[0].contains(r#""id":1"#) && lines[0].contains(r#""ok":true"#));
    assert!(
        lines[1].contains(r#""cache_misses":0"#),
        "second job in one process missed: {}",
        lines[1]
    );
    assert!(lines[2].contains(r#""library_entries":"#), "bad stats line: {}", lines[2]);
    assert!(lines[3].contains(r#""checkpoint""#), "shutdown did not checkpoint: {}", lines[3]);
    assert!(path.exists(), "shutdown left no library file");

    // Restarted process: the same job must warm-start from the file.
    let (stdout, stderr) = run(concat!(r#"{"id":3,"bench":"qaoa_n6"}"#, "\n"));
    assert!(stderr.contains("warm-started"), "no warm start reported: {stderr}");
    let line = stdout.lines().next().unwrap();
    assert!(line.contains(r#""ok":true"#), "warm job failed: {line}");
    assert!(line.contains(r#""cache_misses":0"#), "warm process missed: {line}");
    assert!(line.contains(r#""grape_iterations":0"#), "warm process ran GRAPE: {line}");
    std::fs::remove_file(&path).ok();
}

/// Malformed requests get an error line, and the service keeps serving —
/// one bad job must never take the daemon (or its library) down.
#[test]
fn epocd_survives_malformed_requests() {
    let exe = env!("CARGO_BIN_EXE_epocd");
    let mut child = Command::new(exe)
        .args(["--grape", "0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            concat!(
                "this is not json\n",
                r#"{"id":1,"bench":"no_such_bench"}"#, "\n",
                r#"{"id":2}"#, "\n",
                r#"{"cmd":"nope"}"#, "\n",
                r#"{"id":3,"bench":"ghz_n4"}"#, "\n",
                r#"{"cmd":"shutdown"}"#, "\n",
            )
            .as_bytes(),
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 6, "expected 6 response lines: {stdout}");
    assert!(lines[0].contains(r#""ok":false"#) && lines[0].contains("unparseable"));
    assert!(lines[1].contains(r#""ok":false"#) && lines[1].contains("no_such_bench"));
    assert!(lines[2].contains(r#""ok":false"#) && lines[2].contains("'qasm' or 'bench'"));
    assert!(lines[3].contains(r#""ok":false"#) && lines[3].contains("unknown command"));
    assert!(
        lines[4].contains(r#""id":3"#) && lines[4].contains(r#""ok":true"#),
        "service died before the good job: {}",
        lines[4]
    );
}

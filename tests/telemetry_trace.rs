//! End-to-end telemetry: compile with tracing enabled, export the Chrome
//! trace, re-parse it with the in-tree JSON parser, and check the span
//! structure the pipeline promises.
//!
//! The telemetry registry is process-global, so every test here funnels
//! through one shared lock and resets the registry before recording.

use epoc::partition::PartitionConfig;
use epoc::{EpocCompiler, EpocConfig, StageTimings};
use epoc_circuit::generators;
use epoc_rt::json::Json;
use epoc_rt::telemetry;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests around the process-global registry; a panic in one
/// test must not cascade poison into the rest.
fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One span row pulled back out of the exported trace.
#[derive(Debug, Clone)]
struct TraceSpan {
    name: String,
    cat: String,
    tid: u64,
    depth: u64,
    ts_ns: u64,
    dur_ns: u64,
}

fn parse_spans(doc: &Json) -> Vec<TraceSpan> {
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents missing: {doc:?}");
    };
    events
        .iter()
        .map(|e| {
            let args = e.get("args").expect("args");
            let num =
                |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).unwrap_or_else(|| {
                    panic!("missing numeric {k}")
                }) as u64;
            TraceSpan {
                name: e.get("name").and_then(Json::as_str).expect("name").into(),
                cat: e.get("cat").and_then(Json::as_str).expect("cat").into(),
                tid: num(e, "tid"),
                depth: num(args, "depth"),
                ts_ns: num(args, "ts_ns"),
                dur_ns: num(args, "dur_ns"),
            }
        })
        .collect()
}

/// Compiles a small circuit with a real (1-qubit-GRAPE) hybrid backend
/// under tracing and hands back the parsed trace spans.
fn traced_compile() -> (Vec<TraceSpan>, Json) {
    telemetry::enable();
    telemetry::reset();
    let compiler = EpocCompiler::new(traced_config());
    let report = compiler.compile(&generators::qaoa(3, 1, 2)).unwrap();
    assert!(report.verified);
    let doc = telemetry::chrome_trace();
    // Round-trip through the serializer and the strict parser: the trace
    // a consumer reads is the one we assert on.
    let reparsed = Json::parse(&doc.to_string_pretty()).expect("trace is valid JSON");
    (parse_spans(&reparsed), reparsed)
}

/// Hybrid backend with 1-qubit GRAPE; 2-qubit partitioning keeps every
/// block within `synth_qubit_limit` so QSearch genuinely runs.
fn traced_config() -> EpocConfig {
    let mut config = EpocConfig::with_grape(1).without_regrouping().with_workers(2);
    config.partition = PartitionConfig {
        max_qubits: 2,
        max_gates: 8,
    };
    config
}

#[test]
fn trace_contains_all_stage_spans_and_qoc_children() {
    let _guard = lock();
    let (spans, _) = traced_compile();

    for stage in ["zx", "partition", "synth", "regroup", "pulse"] {
        assert_eq!(
            spans.iter().filter(|s| s.cat == "stage" && s.name == stage).count(),
            1,
            "expected exactly one stage span named {stage}"
        );
    }
    assert!(
        spans.iter().any(|s| s.cat == "qoc" && s.name == "grape"),
        "no GRAPE span recorded"
    );
    assert!(
        spans.iter().any(|s| s.cat == "qoc" && s.name == "duration_search"),
        "no duration-search span recorded"
    );
    assert!(
        spans.iter().any(|s| s.cat == "synth" && s.name == "qsearch"),
        "no QSearch span recorded"
    );
}

#[test]
fn trace_spans_are_well_nested() {
    let _guard = lock();
    let (spans, _) = traced_compile();

    // On each thread, any two spans either nest or are disjoint — the
    // RAII guards cannot partially overlap. Checked on the exact integer
    // nanoseconds carried in args, not the rounded microsecond ts/dur.
    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let thread: Vec<&TraceSpan> = spans.iter().filter(|s| s.tid == tid).collect();
        for a in &thread {
            for b in &thread {
                let (a0, a1) = (a.ts_ns, a.ts_ns + a.dur_ns);
                let (b0, b1) = (b.ts_ns, b.ts_ns + b.dur_ns);
                let disjoint = a1 <= b0 || b1 <= a0;
                let nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
                assert!(
                    disjoint || nested,
                    "spans partially overlap on tid {tid}: {a:?} vs {b:?}"
                );
            }
        }
        // Depth must reflect containment: every depth>0 span has an
        // enclosing span one level shallower on the same thread.
        for s in &thread {
            if s.depth == 0 {
                continue;
            }
            assert!(
                thread.iter().any(|p| {
                    p.depth == s.depth - 1
                        && p.ts_ns <= s.ts_ns
                        && s.ts_ns + s.dur_ns <= p.ts_ns + p.dur_ns
                }),
                "depth-{} span {:?} has no parent on tid {tid}",
                s.depth,
                s.name
            );
        }
    }
}

#[test]
fn trace_counters_match_report_and_registry() {
    let _guard = lock();
    telemetry::enable();
    telemetry::reset();
    let compiler = EpocCompiler::new(traced_config());
    let report = compiler.compile(&generators::qaoa(3, 1, 2)).unwrap();
    assert!(report.verified);
    assert!(report.stages.grape_iterations > 0, "hybrid compile ran no GRAPE");
    assert!(report.stages.grape_probes > 0);
    assert_eq!(
        telemetry::counter_value("grape.iterations") as usize,
        report.stages.grape_iterations,
        "registry counter and report stat disagree"
    );
    assert_eq!(
        telemetry::counter_value("pulse_lib.hits") as usize,
        report.stages.cache_hits
    );
    assert_eq!(
        telemetry::counter_value("pulse_lib.misses") as usize,
        report.stages.cache_misses
    );
    let doc = telemetry::chrome_trace();
    let counters = doc.get("epocCounters").expect("epocCounters present");
    assert_eq!(
        counters.get("grape.iterations").and_then(Json::as_f64),
        Some(report.stages.grape_iterations as f64)
    );
}

/// A compile under a `TelemetryScope` attributes *everything* to the
/// scoped job — every span event (including those recorded on worker
/// threads the pipeline fanned out to) and every counter delta — and the
/// attribution survives the Chrome-trace round trip as `args.job`.
#[test]
fn scoped_compile_attributes_spans_and_counters_to_the_job() {
    let _guard = lock();
    telemetry::enable();
    telemetry::reset();
    let compiler = EpocCompiler::new(traced_config());
    let report = {
        let _scope = telemetry::TelemetryScope::enter(42);
        compiler.compile(&generators::qaoa(3, 1, 2)).unwrap()
    };
    assert!(report.verified);

    let events = telemetry::events_snapshot();
    assert!(!events.is_empty());
    assert!(
        events.iter().all(|e| e.job == 42),
        "a span escaped the job scope: {:?}",
        events.iter().find(|e| e.job != 42)
    );
    let worker_tids: Vec<u64> =
        events.iter().filter(|e| e.tid != 0).map(|e| e.tid).collect();
    assert!(
        !worker_tids.is_empty(),
        "2-worker compile recorded no worker-thread spans — pool propagation untested"
    );

    // Counters recorded under the scope appear in the per-job table, and
    // the job view agrees with the global one (this was the only job).
    let jobs = telemetry::job_counters_snapshot();
    let job_grape: u64 = jobs
        .iter()
        .filter(|(j, n, _)| *j == 42 && n == "grape.iterations")
        .map(|(_, _, v)| *v)
        .sum();
    assert_eq!(job_grape as usize, report.stages.grape_iterations);
    assert_eq!(job_grape, telemetry::counter_value("grape.iterations"));

    // The exported trace carries the id on every event.
    let doc = telemetry::chrome_trace();
    let Some(Json::Arr(raw)) = doc.get("traceEvents") else {
        panic!("traceEvents missing");
    };
    for e in raw {
        let job = e
            .get("args")
            .and_then(|a| a.get("job"))
            .and_then(Json::as_f64);
        assert_eq!(job, Some(42.0), "event without args.job: {e:?}");
    }
    telemetry::disable();
    telemetry::reset();
}

/// The resident-size gauges track the pulse libraries through a real
/// compile: after a cold compile they equal the compiler's own
/// accounting, and clearing via a fresh registry reset starts from zero.
#[test]
fn library_gauges_track_the_compiler() {
    let _guard = lock();
    telemetry::enable();
    telemetry::reset();
    assert_eq!(telemetry::gauge_value("pulse_lib.resident_bytes"), 0);
    let compiler = EpocCompiler::new(traced_config());
    compiler.compile(&generators::qaoa(3, 1, 2)).unwrap();
    assert!(compiler.library_bytes() > 0);
    assert_eq!(
        telemetry::gauge_value("pulse_lib.resident_bytes"),
        compiler.library_bytes() as i64,
        "gauge drifted from the store's byte accounting"
    );
    assert_eq!(
        telemetry::gauge_value("pulse_lib.entries"),
        compiler.library_len() as i64,
        "gauge drifted from the store's entry count"
    );
    telemetry::disable();
    telemetry::reset();
}

#[test]
fn report_bytes_identical_with_and_without_telemetry() {
    let _guard = lock();
    let compile = || {
        let compiler = EpocCompiler::new(EpocConfig::fast().with_workers(2));
        let mut r = compiler.compile(&generators::ghz(4)).unwrap();
        r.compile_time = Duration::ZERO;
        r.stages.timings = StageTimings::default();
        r.to_json()
    };
    telemetry::disable();
    let without = compile();
    telemetry::enable();
    telemetry::reset();
    let with = compile();
    telemetry::disable();
    assert_eq!(without, with, "telemetry perturbed the report");
}

//! Property-based tests: the ZX optimization pipeline preserves circuit
//! semantics on randomized inputs.

use epoc_circuit::{circuits_equivalent, generators, Gate};
use epoc_zx::{
    circuit_to_graph, extract_circuit, full_reduce, latency_cost, lower_for_zx, zx_optimize,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zx_optimize_preserves_random_circuits(
        n in 2usize..5,
        gates in 4usize..24,
        seed in 0u64..10_000,
    ) {
        let c = generators::random_circuit(n, gates, seed);
        let r = zx_optimize(&c);
        prop_assert!(circuits_equivalent(&c, &r.circuit, 1e-6));
        // Contract: the kept result never costs more (latency-weighted
        // critical path) than the basis-lowered input.
        if r.optimized {
            let lowered = lower_for_zx(&c).expect("no opaque blocks");
            prop_assert!(latency_cost(&r.circuit) <= latency_cost(&lowered));
        }
    }

    #[test]
    fn zx_optimize_preserves_clifford_t(
        n in 2usize..5,
        gates in 5usize..30,
        seed in 0u64..10_000,
    ) {
        let c = generators::random_clifford_t(n, gates, 0.25, seed);
        let r = zx_optimize(&c);
        prop_assert!(circuits_equivalent(&c, &r.circuit, 1e-6));
    }

    #[test]
    fn simplify_extract_round_trip(
        n in 2usize..4,
        gates in 3usize..18,
        seed in 0u64..10_000,
    ) {
        let c = generators::random_circuit(n, gates, seed.wrapping_add(777));
        let mut g = circuit_to_graph(&c).expect("convertible");
        full_reduce(&mut g);
        let out = extract_circuit(&g).expect("extractable after clifford simp");
        prop_assert!(circuits_equivalent(&c, &out, 1e-6));
    }

    #[test]
    fn double_optimization_is_stable(
        seed in 0u64..5_000,
    ) {
        // Optimizing twice must not grow the circuit or change semantics.
        let c = generators::random_clifford_t(3, 20, 0.2, seed);
        let once = zx_optimize(&c);
        let twice = zx_optimize(&once.circuit);
        prop_assert!(circuits_equivalent(&c, &twice.circuit, 1e-6));
        prop_assert!(latency_cost(&twice.circuit) <= latency_cost(&once.circuit) + 1e-9);
    }
}

#[test]
fn zx_reduces_depth_on_average_like_figure5() {
    // Figure 5: mean depth reduction ≈ 1.48× on random mixes. On our
    // random Clifford+T population require a mean reduction ≥ 1.15×
    // (generator mix differs from the paper's secret set).
    let mut ratios = Vec::new();
    for seed in 0..34u64 {
        let c = generators::random_clifford_t(4, 60, 0.15, seed);
        let r = zx_optimize(&c);
        if r.depth_after > 0 {
            ratios.push(r.depth_before as f64 / r.depth_after as f64);
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean >= 1.15,
        "mean ZX depth reduction only {mean:.3}x across {} circuits",
        ratios.len()
    );
}

#[test]
fn zx_handles_parameterized_rotations() {
    for seed in 0..10u64 {
        let c = generators::dnn(3, 2, seed);
        let r = zx_optimize(&c);
        assert!(
            circuits_equivalent(&c, &r.circuit, 1e-6),
            "dnn seed {seed} broken"
        );
    }
}

#[test]
fn zx_on_structured_benchmarks() {
    for b in generators::benchmark_suite() {
        if b.circuit.n_qubits() > 7 {
            continue;
        }
        let r = zx_optimize(&b.circuit);
        assert!(
            circuits_equivalent(&b.circuit, &r.circuit, 1e-6),
            "{} broken by ZX",
            b.name
        );
    }
}

#[test]
fn extraction_gate_set_is_clean() {
    let c = generators::random_clifford_t(3, 25, 0.2, 99);
    let mut g = circuit_to_graph(&c).unwrap();
    full_reduce(&mut g);
    let out = extract_circuit(&g).unwrap();
    for op in out.ops() {
        assert!(
            matches!(
                op.gate,
                Gate::H | Gate::RZ(_) | Gate::CZ | Gate::CX | Gate::Swap
            ),
            "unexpected gate {} in extraction output",
            op.gate
        );
    }
}

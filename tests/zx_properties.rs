//! Property-based tests: the ZX optimization pipeline preserves circuit
//! semantics on randomized inputs.
//!
//! Ported from `proptest!` macros to `epoc_rt::check`; case counts (48)
//! are preserved, and the counterexamples that used to live in
//! `tests/zx_properties.proptest-regressions` are pinned as the explicit
//! `zx_regression_*` tests below.

use epoc_circuit::{circuits_equivalent, generators, Gate};
use epoc_rt::check::property;
use epoc_zx::{
    circuit_to_graph, extract_circuit, full_reduce, latency_cost, lower_for_zx, zx_optimize,
};

/// Body of `zx_optimize_preserves_random_circuits`, callable with the
/// concrete inputs the old proptest regression file recorded.
fn check_zx_preserves_random(n: usize, gates: usize, seed: u64) {
    let c = generators::random_circuit(n, gates, seed);
    let r = zx_optimize(&c);
    assert!(
        circuits_equivalent(&c, &r.circuit, 1e-6),
        "n={n} gates={gates} seed={seed}: semantics broken"
    );
    // Contract: the kept result never costs more (latency-weighted
    // critical path) than the basis-lowered input.
    if r.optimized {
        let lowered = lower_for_zx(&c).expect("no opaque blocks");
        assert!(
            latency_cost(&r.circuit) <= latency_cost(&lowered),
            "n={n} gates={gates} seed={seed}: optimization made it worse"
        );
    }
}

#[test]
fn zx_optimize_preserves_random_circuits() {
    property("zx_optimize_preserves_random_circuits")
        .cases(48)
        .run(|g| {
            let n = g.usize_in(2, 5);
            let gates = g.usize_in(4, 24);
            let seed = g.u64_in(0, 10_000);
            check_zx_preserves_random(n, gates, seed);
        });
}

// The three counterexamples from tests/zx_properties.proptest-regressions,
// re-encoded as direct calls so the old failures stay pinned forever.

#[test]
fn zx_regression_n2_g13_s2140() {
    check_zx_preserves_random(2, 13, 2140);
}

#[test]
fn zx_regression_n3_g8_s2810() {
    check_zx_preserves_random(3, 8, 2810);
}

#[test]
fn zx_regression_n3_g12_s9005() {
    check_zx_preserves_random(3, 12, 9005);
}

#[test]
fn zx_optimize_preserves_clifford_t() {
    property("zx_optimize_preserves_clifford_t").cases(48).run(|g| {
        let n = g.usize_in(2, 5);
        let gates = g.usize_in(5, 30);
        let seed = g.u64_in(0, 10_000);
        let c = generators::random_clifford_t(n, gates, 0.25, seed);
        let r = zx_optimize(&c);
        assert!(
            circuits_equivalent(&c, &r.circuit, 1e-6),
            "n={n} gates={gates} seed={seed}"
        );
    });
}

#[test]
fn simplify_extract_round_trip() {
    property("simplify_extract_round_trip").cases(48).run(|g| {
        let n = g.usize_in(2, 4);
        let gates = g.usize_in(3, 18);
        let seed = g.u64_in(0, 10_000);
        let c = generators::random_circuit(n, gates, seed.wrapping_add(777));
        let mut g = circuit_to_graph(&c).expect("convertible");
        full_reduce(&mut g);
        let out = extract_circuit(&g).expect("extractable after clifford simp");
        assert!(
            circuits_equivalent(&c, &out, 1e-6),
            "n={n} gates={gates} seed={seed}"
        );
    });
}

#[test]
fn double_optimization_is_stable() {
    property("double_optimization_is_stable").cases(48).run(|g| {
        let seed = g.u64_in(0, 5_000);
        // Optimizing twice must not grow the circuit or change semantics.
        let c = generators::random_clifford_t(3, 20, 0.2, seed);
        let once = zx_optimize(&c);
        let twice = zx_optimize(&once.circuit);
        assert!(circuits_equivalent(&c, &twice.circuit, 1e-6), "seed={seed}");
        assert!(
            latency_cost(&twice.circuit) <= latency_cost(&once.circuit) + 1e-9,
            "seed={seed}"
        );
    });
}

#[test]
fn zx_reduces_depth_on_average_like_figure5() {
    // Figure 5: mean depth reduction ≈ 1.48× on random mixes. On our
    // random Clifford+T population require a mean reduction ≥ 1.15×
    // (generator mix differs from the paper's secret set).
    let mut ratios = Vec::new();
    for seed in 0..34u64 {
        let c = generators::random_clifford_t(4, 60, 0.15, seed);
        let r = zx_optimize(&c);
        if r.depth_after > 0 {
            ratios.push(r.depth_before as f64 / r.depth_after as f64);
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean >= 1.15,
        "mean ZX depth reduction only {mean:.3}x across {} circuits",
        ratios.len()
    );
}

#[test]
fn zx_handles_parameterized_rotations() {
    for seed in 0..10u64 {
        let c = generators::dnn(3, 2, seed);
        let r = zx_optimize(&c);
        assert!(
            circuits_equivalent(&c, &r.circuit, 1e-6),
            "dnn seed {seed} broken"
        );
    }
}

#[test]
fn zx_on_structured_benchmarks() {
    for b in generators::benchmark_suite() {
        if b.circuit.n_qubits() > 7 {
            continue;
        }
        let r = zx_optimize(&b.circuit);
        assert!(
            circuits_equivalent(&b.circuit, &r.circuit, 1e-6),
            "{} broken by ZX",
            b.name
        );
    }
}

#[test]
fn extraction_gate_set_is_clean() {
    let c = generators::random_clifford_t(3, 25, 0.2, 99);
    let mut g = circuit_to_graph(&c).unwrap();
    full_reduce(&mut g);
    let out = extract_circuit(&g).unwrap();
    for op in out.ops() {
        assert!(
            matches!(
                op.gate,
                Gate::H | Gate::RZ(_) | Gate::CZ | Gate::CX | Gate::Swap
            ),
            "unexpected gate {} in extraction output",
            op.gate
        );
    }
}
